//! Device configuration (Table II of the paper).

use crate::energy::EnergyParams;
use crate::line::DEFAULT_LINE_SIZE;
use crate::timing::Timing;

/// Configuration of the simulated NVM main memory.
///
/// Defaults reproduce the paper's Table II: 16 GB PCM, 256 B lines, with the
/// PCM timing/energy models. Experiments and unit tests shrink the capacity;
/// the device stores lines sparsely, so capacity only bounds the address
/// space.
#[derive(Debug, Clone, PartialEq)]
pub struct NvmConfig {
    /// Total capacity, in bytes.
    pub capacity_bytes: u64,
    /// Line size, in bytes.
    pub line_size: usize,
    /// Number of banks (line-interleaved).
    pub banks: usize,
    /// Lines per row buffer within a bank (row size = lines_per_row × line
    /// size; 16 × 256 B = 4 KB rows by default).
    pub lines_per_row: u64,
    /// Timing parameters.
    pub timing: Timing,
    /// Energy parameters.
    pub energy: EnergyParams,
}

impl NvmConfig {
    /// The paper's evaluation configuration: 16 GB PCM, 256 B lines,
    /// 4 effective banks (our bank is coarser than NVMain's rank/bank/bus
    /// hierarchy, so fewer effective banks stand in for the unmodeled
    /// channel-level serialization).
    pub fn paper() -> Self {
        NvmConfig {
            capacity_bytes: 16 << 30,
            line_size: DEFAULT_LINE_SIZE,
            banks: 4,
            lines_per_row: 16,
            timing: Timing::PCM,
            energy: EnergyParams::PCM,
        }
    }

    /// A small configuration for unit tests (1 MB).
    pub fn small() -> Self {
        NvmConfig {
            capacity_bytes: 1 << 20,
            ..NvmConfig::paper()
        }
    }

    /// Number of addressable lines.
    ///
    /// ```
    /// use dewrite_nvm::NvmConfig;
    /// assert_eq!(NvmConfig::paper().num_lines(), (16u64 << 30) / 256);
    /// ```
    pub fn num_lines(&self) -> u64 {
        self.capacity_bytes / self.line_size as u64
    }

    /// Number of bits in one line.
    pub fn line_bits(&self) -> u64 {
        self.line_size as u64 * 8
    }

    /// Validate internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint: zero sizes,
    /// non-power-of-two line size, or capacity not a multiple of line size.
    pub fn validate(&self) -> Result<(), String> {
        if self.line_size == 0 {
            return Err("line_size must be nonzero".into());
        }
        if !self.line_size.is_power_of_two() {
            return Err(format!(
                "line_size {} must be a power of two",
                self.line_size
            ));
        }
        if self.banks == 0 {
            return Err("banks must be nonzero".into());
        }
        if self.lines_per_row == 0 {
            return Err("lines_per_row must be nonzero".into());
        }
        if self.capacity_bytes == 0 || !self.capacity_bytes.is_multiple_of(self.line_size as u64) {
            return Err(format!(
                "capacity {} must be a nonzero multiple of line_size {}",
                self.capacity_bytes, self.line_size
            ));
        }
        Ok(())
    }
}

impl Default for NvmConfig {
    fn default() -> Self {
        NvmConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_is_valid_and_matches_table2() {
        let c = NvmConfig::paper();
        c.validate().unwrap();
        assert_eq!(c.capacity_bytes, 16 << 30);
        assert_eq!(c.line_size, 256);
        assert_eq!(c.line_bits(), 2048);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut c = NvmConfig::small();
        c.line_size = 0;
        assert!(c.validate().is_err());

        let mut c = NvmConfig::small();
        c.line_size = 100;
        assert!(c.validate().unwrap_err().contains("power of two"));

        let mut c = NvmConfig::small();
        c.banks = 0;
        assert!(c.validate().is_err());

        let mut c = NvmConfig::small();
        c.capacity_bytes = 300;
        assert!(c.validate().is_err());
    }
}
