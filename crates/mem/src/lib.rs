//! Memory-controller substrate: metadata cache, core model, latency stats.
//!
//! These are the controller-side building blocks every secure-NVMM scheme in
//! the reproduction shares:
//!
//! * [`MetadataCache`] — the on-chip, write-back, set-associative cache that
//!   existing secure NVMMs use for encryption counters and that DeWrite
//!   extends to hold dedup metadata; supports the sequential prefetch fills
//!   whose granularity Fig. 21 sweeps.
//! * [`CoreModel`] — a simple in-order core that stalls on persist-ordered
//!   writes and demand reads, turning memory latencies into the IPC numbers
//!   of Fig. 17.
//! * [`LatencyStats`] — streaming latency summaries used for the read/write
//!   speedup figures.
//!
//! # Example
//!
//! ```
//! use dewrite_mem::{CacheConfig, MetadataCache};
//!
//! // A 512 KB cache of 8-byte entries = 64 Ki entries.
//! let mut cache = MetadataCache::new(CacheConfig::with_capacity(64 * 1024));
//! if !cache.access(1234, false) {
//!     cache.insert(1234, false); // fill after miss
//! }
//! assert!(cache.access(1234, false));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod core_model;
mod hierarchy;
#[doc(hidden)]
pub mod seed;
mod stats;

pub use cache::{CacheConfig, CacheStats, Evicted, MetadataCache, Replacement};
pub use core_model::{CoreConfig, CoreModel};
pub use hierarchy::{CacheHierarchy, HierarchyOutcome, LevelConfig, LevelStats};
pub use stats::{LatencyHistogram, LatencyStats};
