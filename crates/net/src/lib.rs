//! `dewrite-net`: a TCP frontend for the sharded dedup engine.
//!
//! The engine crate's [`EngineService`](dewrite_engine::EngineService)
//! accepts work from any number of concurrent submitters and keeps the
//! merged simulated report deterministic through per-shard sequence
//! numbers. This crate puts a wire on it:
//!
//! * [`proto`] — a dependency-free binary protocol: length-prefixed,
//!   CRC-guarded frames, versioned and hardened like the persist codecs.
//! * [`server`] — `dewrite-serve`'s core: a std-only, thread-per-core,
//!   nonblocking event loop (no async runtime — the build environment is
//!   offline) multiplexing thousands of connections into the engine's
//!   non-blocking submit path, with per-connection in-order responses,
//!   graceful drain (flush WAL epochs + checkpoint), and a hard-abort
//!   switch for crash testing.
//! * [`client`] — a blocking control connection plus a multi-connection
//!   data-phase driver used by `loadgen --net`, reporting host-side
//!   end-to-end latency quarantined in a [`client::NetSummary`].
//!
//! # The determinism boundary
//!
//! Every data request carries its **per-shard sequence number** in-band
//! ([`proto::Request::Write`]`::shard_seq`), so a socket-driven replay —
//! any connection count, any interleaving — produces a merged simulated
//! `RunReport` bit-identical to the in-process run. Host-side
//! measurements (socket latency, ops/s) never touch the simulated
//! report.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod proto;
pub mod server;

pub use client::{drive, request_shutdown, Control, DriveOptions, HelloInfo, NetSummary};
pub use server::{NetServer, ServeOptions, ServeOutcome, ServerHandle};
