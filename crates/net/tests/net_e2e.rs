//! End-to-end socket tests: a real `NetServer` on an ephemeral port,
//! driven by the real client — asserting the load-bearing invariant
//! (socket replay is bit-identical to the in-process run), protocol
//! error handling without desync, generation resets, and a
//! many-connection smoke.

use std::io::{Read, Write};
use std::net::TcpStream;

use dewrite_engine::{run, EngineConfig, Pacing};
use dewrite_net::proto::{self, ErrorCode, FrameEvent, Hello, Request, Response, NET_VERSION};
use dewrite_net::{drive, Control, DriveOptions, NetServer, ServeOptions};
use dewrite_trace::{app_by_name, TraceRecord};

struct Trace {
    records: Vec<TraceRecord>,
    lines: u64,
    writes: u64,
}

/// A small deterministic mcf trace (warmup + `ops` records).
fn trace(ops: usize, seed: u64) -> Trace {
    let mut profile = app_by_name("mcf").expect("mcf profile");
    profile.working_set_lines = 512;
    profile.content_pool_size = 64;
    let mut gen = dewrite_trace::TraceGenerator::new(profile, 256, seed);
    let lines = gen.required_lines();
    let mut records = gen.warmup_records();
    records.extend(gen.by_ref().take(ops));
    let writes = records.iter().filter(|r| r.op.is_write()).count() as u64;
    Trace {
        records,
        lines,
        writes,
    }
}

fn hello(t: &Trace) -> Hello {
    Hello {
        version: NET_VERSION,
        line_size: 256,
        lines: t.lines,
        expected_writes: t.writes,
        cache_policy: 0,
        digest_mode: 0,
        app: "mcf".into(),
    }
}

fn start_server(shards: usize) -> (NetServer, String) {
    let opts = ServeOptions {
        addr: "127.0.0.1:0".into(),
        shards,
        threads: 2,
        ..ServeOptions::default()
    };
    let server = NetServer::bind(opts).expect("bind");
    let addr = server.local_addr().to_string();
    (server, addr)
}

/// The in-process oracle: same geometry, same trace, and the exact
/// per-shard report array string the server must reproduce.
fn baseline(t: &Trace, shards: usize) -> (dewrite_engine::EngineRun, String) {
    let config = EngineConfig::for_workload(shards, 256, t.lines, t.writes);
    let run = run(&config, "mcf", t.records.clone());
    let expected = format!(
        "[{}]",
        run.shards
            .iter()
            .map(|s| s.report.to_json().to_string())
            .collect::<Vec<_>>()
            .join(",")
    );
    (run, expected)
}

fn closed(addr: &str, connections: usize, window: usize) -> DriveOptions {
    DriveOptions {
        addr: addr.to_string(),
        connections,
        window,
        threads: 0,
        pacing: Pacing::Closed,
    }
}

/// Blocking frame read on a raw test socket.
fn read_resp(stream: &mut TcpStream, rbuf: &mut Vec<u8>) -> Response {
    loop {
        match proto::next_frame(rbuf).expect("healthy frame stream") {
            FrameEvent::Incomplete => {}
            FrameEvent::Frame { payload, consumed } => {
                let resp = proto::decode_response(payload).expect("decodable response");
                rbuf.drain(..consumed);
                return resp;
            }
        }
        let mut tmp = [0u8; 4096];
        let n = stream.read(&mut tmp).expect("read");
        assert!(n > 0, "server closed the connection unexpectedly");
        rbuf.extend_from_slice(&tmp[..n]);
    }
}

fn expect_error(resp: Response, code: ErrorCode) {
    match resp {
        Response::Error { code: got, .. } => assert_eq!(got, code),
        other => panic!("expected {code:?} error, got {other:?}"),
    }
}

#[test]
fn socket_replay_is_bit_identical_to_in_process() {
    let t = trace(3000, 7);
    let (server, addr) = start_server(4);
    let h = hello(&t);
    let (mut control, info) = Control::connect(&addr, &h).expect("control connect");
    assert_eq!(info.shards, 4);
    let (local, expected) = baseline(&t, info.shards);

    let summary = drive(&closed(&addr, 8, 16), &h, &t.records).expect("drive");
    assert_eq!(summary.errors, 0, "healthy replay must see no errors");
    assert_eq!(summary.ops as usize, t.records.len());
    assert!(summary.host_latency.p99_ns() > 0);

    control.flush().expect("flush");
    let checked = control.scrub().expect("scrub");
    assert!(checked > 0, "scrub must cover resident lines");
    let report = control.report().expect("report");
    assert_eq!(report, expected, "server reports must be bit-identical");

    control.shutdown().expect("shutdown");
    let outcome = server.join();
    assert!(!outcome.aborted);
    assert_eq!(outcome.errors, 0);
    // The drained engine run the server hands back is the same merged
    // simulated report the in-process run produced.
    let served = outcome.run.expect("graceful shutdown keeps the run");
    assert_eq!(served.ops, local.ops);
    assert_eq!(
        served.merged.to_json().to_string(),
        local.merged.to_json().to_string()
    );
}

#[test]
fn sixty_four_connections_replay_cleanly() {
    let t = trace(2000, 11);
    let (server, addr) = start_server(2);
    let h = hello(&t);
    let (mut control, info) = Control::connect(&addr, &h).expect("control connect");
    let (_, expected) = baseline(&t, info.shards);

    let summary = drive(&closed(&addr, 64, 4), &h, &t.records).expect("drive");
    assert_eq!(summary.errors, 0);
    assert_eq!(summary.ops as usize, t.records.len());

    let stats = control.stats().expect("stats");
    assert_eq!(stats.ops as usize, t.records.len());
    // 64 data conns + 1 control conn.
    assert_eq!(stats.accepted, 65);
    assert_eq!(control.report().expect("report"), expected);

    control.shutdown().expect("shutdown");
    assert!(!server.join().aborted);
}

#[test]
fn reset_tears_down_and_the_next_generation_matches_again() {
    let t = trace(1500, 3);
    let (server, addr) = start_server(2);
    let h = hello(&t);
    let (mut control, info) = Control::connect(&addr, &h).expect("control connect");
    let (_, expected) = baseline(&t, info.shards);

    drive(&closed(&addr, 4, 8), &h, &t.records).expect("first replay");
    let first = control.report().expect("report");
    assert_eq!(first, expected);
    control.reset().expect("reset");
    // The control session belongs to the torn-down generation now.
    assert!(
        control.report().is_err(),
        "stale-generation request must be refused"
    );

    // A fresh handshake builds generation 2; the identical replay must
    // produce the identical reports (per-generation state is complete).
    let (mut c2, _) = Control::connect(&addr, &h).expect("reconnect");
    drive(&closed(&addr, 4, 8), &h, &t.records).expect("second replay");
    let second = c2.report().expect("report");
    assert_eq!(second, expected);

    c2.shutdown().expect("shutdown");
    assert!(!server.join().aborted);
}

#[test]
fn malformed_frames_get_typed_errors_without_desync() {
    let t = trace(200, 5);
    let (server, addr) = start_server(2);

    let mut stream = TcpStream::connect(&addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut rbuf = Vec::new();
    let data = vec![0u8; 256];

    // 1. Data op before any Hello: refused, typed.
    stream
        .write_all(&proto::encode_request(&Request::Write {
            addr: 0,
            shard_seq: 0,
            gap: 0,
            data: data.clone(),
        }))
        .expect("write");
    expect_error(read_resp(&mut stream, &mut rbuf), ErrorCode::NotReady);

    // 2. Unknown tag: typed error, stream keeps going.
    stream
        .write_all(&proto::encode_frame(&[0x55]))
        .expect("write");
    expect_error(read_resp(&mut stream, &mut rbuf), ErrorCode::UnknownOp);

    // 3. The same connection can still handshake…
    stream
        .write_all(&proto::encode_request(&Request::Hello(hello(&t))))
        .expect("write");
    match read_resp(&mut stream, &mut rbuf) {
        Response::HelloOk { lines, .. } => assert_eq!(lines, t.lines),
        other => panic!("expected HelloOk, got {other:?}"),
    }

    // 4. …and run a valid op.
    stream
        .write_all(&proto::encode_request(&Request::Write {
            addr: 0,
            shard_seq: 0,
            gap: 0,
            data: data.clone(),
        }))
        .expect("write");
    match read_resp(&mut stream, &mut rbuf) {
        Response::WriteOk { .. } => {}
        other => panic!("expected WriteOk, got {other:?}"),
    }

    // 5. Wrong payload length for the session's line size.
    stream
        .write_all(&proto::encode_request(&Request::Write {
            addr: 1,
            shard_seq: 1,
            gap: 0,
            data: vec![0u8; 128],
        }))
        .expect("write");
    expect_error(read_resp(&mut stream, &mut rbuf), ErrorCode::BadPayload);

    // 6. Out-of-range address.
    stream
        .write_all(&proto::encode_request(&Request::Read {
            addr: t.lines,
            shard_seq: 1,
            gap: 0,
        }))
        .expect("write");
    expect_error(read_resp(&mut stream, &mut rbuf), ErrorCode::BadPayload);

    // 7. The reserved control sequence number is not a valid data seq.
    stream
        .write_all(&proto::encode_request(&Request::Write {
            addr: 1,
            shard_seq: u64::MAX,
            gap: 0,
            data: data.clone(),
        }))
        .expect("write");
    expect_error(read_resp(&mut stream, &mut rbuf), ErrorCode::BadPayload);

    // 8. A second Hello with different geometry is a config mismatch.
    let mut wrong = hello(&t);
    wrong.lines = t.lines * 2;
    stream
        .write_all(&proto::encode_request(&Request::Hello(wrong)))
        .expect("write");
    expect_error(read_resp(&mut stream, &mut rbuf), ErrorCode::ConfigMismatch);

    // 9. A CRC-corrupt frame is fatal for the connection: one BadFrame
    // error, then close (a desynced byte stream can't be trusted).
    let mut corrupt = proto::encode_request(&Request::Scrub);
    let last = corrupt.len() - 1;
    corrupt[last] ^= 0xFF;
    stream.write_all(&corrupt).expect("write");
    expect_error(read_resp(&mut stream, &mut rbuf), ErrorCode::BadFrame);
    let mut tmp = [0u8; 64];
    loop {
        match stream.read(&mut tmp) {
            Ok(0) => break,
            Ok(_) => continue,
            Err(e) => panic!("expected EOF after a framing violation, got {e}"),
        }
    }

    // The server survived all of it: a fresh connection still works.
    let (mut control, _) = Control::connect(&addr, &hello(&t)).expect("reconnect");
    let stats = control.stats().expect("stats");
    assert!(stats.errors >= 7, "typed errors must be counted");
    control.shutdown().expect("shutdown");
    let outcome = server.join();
    assert!(!outcome.aborted);
}
