//! `loadgen` — drive the sharded engine with closed- or open-loop clients
//! and emit `BENCH_engine.json`.
//!
//! ```text
//! loadgen --app mcf --shards 4 --ops 200k --check
//! loadgen --apps mcf,lbm,gems --sweep 1,2,4,8 --out BENCH_engine.json
//! loadgen --app vips --mode open --rate 500k --queue-depth 256
//! loadgen --app mcf --net 127.0.0.1:7411 --connections 64,256 --check
//! ```
//!
//! For every app the tool always runs `--shards 1` first: that run's dedup
//! rate is the **global** rate (one table sees all content), so each
//! multi-shard run can report its digest-sharding cost
//! (`dedup_delta_vs_global`). With `--check` it also scrubs every shard's
//! tables after the drain and asserts the multi-shard speedup when the
//! host has enough hardware parallelism.
//!
//! With `--net ADDR` the tool becomes a socket client against a running
//! `dewrite-serve`: for each `--connections` entry it replays the trace
//! over that many connections, measures end-to-end host ops/s and latency
//! percentiles, fetches the server's per-shard reports, and asserts they
//! are **bit-identical** to a local in-process run of the same trace —
//! then `Reset`s the server for the next entry. Results land in a `net`
//! section of the JSON (host-side numbers quarantined from the simulated
//! report).

use std::process::ExitCode;
use std::time::Duration;

use dewrite_core::Json;
use dewrite_engine::{run, DigestMode, EngineConfig, EngineRun, FsmPolicy, Pacing, Replacement};
use dewrite_net::proto::{Hello, NET_VERSION};
use dewrite_net::{client, drive, Control, DriveOptions, HelloInfo};
use dewrite_nvm::{AtomicBitmap, FsmTree, Reservation};
use dewrite_trace::{app_by_name, DupOracle, TraceGenerator, TraceRecord};

const DEFAULT_KEY: [u8; 16] = *b"dewrite-repro-16";

struct Options {
    apps: Vec<String>,
    ops: usize,
    sweep: Vec<usize>,
    mode: String,
    rate: f64,
    queue_depth: usize,
    seed: u64,
    ws_lines: u64,
    pool: usize,
    out: String,
    check: bool,
    batch: usize,
    coalesce: usize,
    producers: usize,
    persist_dir: Option<String>,
    fsm: FsmPolicy,
    cache_policy: Replacement,
    digest_mode: DigestMode,
    fsm_churn: Vec<usize>,
    net: Option<String>,
    connections: Vec<usize>,
    net_window: usize,
    client_threads: usize,
    net_shutdown: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            apps: vec!["mcf".into()],
            ops: 200_000,
            sweep: vec![4],
            mode: "closed".into(),
            rate: 1_000_000.0,
            queue_depth: 1024,
            seed: 0xDE_17_17_E5,
            ws_lines: 1 << 14,
            pool: 1024,
            out: "BENCH_engine.json".into(),
            check: false,
            batch: 64,
            coalesce: 0,
            producers: 0,
            persist_dir: None,
            fsm: FsmPolicy::default(),
            cache_policy: Replacement::default(),
            digest_mode: DigestMode::default(),
            fsm_churn: Vec::new(),
            net: None,
            connections: vec![64],
            net_window: 32,
            client_threads: 0,
            net_shutdown: false,
        }
    }
}

fn usage() -> ExitCode {
    eprintln!("usage: loadgen [options]");
    eprintln!("  --app NAME        one workload (see trace apps) [mcf]");
    eprintln!("  --apps A,B,C      several workloads");
    eprintln!("  --ops N           operations per run; k/m suffixes ok [200k]");
    eprintln!("  --shards N        shard count [4]");
    eprintln!("  --sweep N,M,...   run several shard counts");
    eprintln!("  --mode M          closed | open [closed]");
    eprintln!("  --rate R          open-loop issue rate, ops/s; k/m ok [1m]");
    eprintln!("  --queue-depth N   bounded per-shard queue capacity [1024]");
    eprintln!("  --seed N          trace RNG seed");
    eprintln!("  --lines N         working-set lines; k/m ok [16k]");
    eprintln!("  --pool N          recurring-content pool size [1024]");
    eprintln!("  --batch N         worker drain batch / producer chunk [64]");
    eprintln!("  --coalesce N      per-shard write-coalescing window; 0 = off [0]");
    eprintln!("  --producers N     submission threads; 0 = one per two shards [0]");
    eprintln!("  --out PATH        JSON output path [BENCH_engine.json]");
    eprintln!("  --persist-dir P   per-shard metadata WAL + checkpoints under P/<app>-s<N>/");
    eprintln!("  --fsm P           free-space manager: flat | tree | tree-wear [tree]");
    eprintln!("  --cache-policy P  metadata-cache eviction: lru | fifo | s3-fifo [lru];");
    eprintln!("                    in net mode the policy rides in the Hello handshake");
    eprintln!("  --digest-mode M   dedup digest: crc32-verify | strong-keyed [crc32-verify];");
    eprintln!("                    in net mode the mode rides in the Hello handshake");
    eprintln!("  --fsm-churn T,..  standalone allocator contention sweep over thread");
    eprintln!("                    counts (no app runs): flat vs tree claims/s");
    eprintln!("  --net ADDR        socket-client mode against a running dewrite-serve;");
    eprintln!("                    replays the trace over TCP, asserts the server's");
    eprintln!("                    reports are bit-identical to an in-process run");
    eprintln!("  --connections L   connection counts to sweep in net mode, comma list [64]");
    eprintln!("  --window N        per-connection in-flight window in net mode [32]");
    eprintln!("  --client-threads N  client sweep threads; 0 = one per core [0]");
    eprintln!("  --net-shutdown    ask the server to drain and exit when done");
    eprintln!("  --check           scrub every shard + assert multi-shard speedup");
    eprintln!("                    (net mode: assert report bit-identity + zero errors)");
    ExitCode::from(2)
}

/// Parse `200`, `200k`, `2m` into a count.
fn parse_count(v: &str) -> Result<u64, String> {
    let (digits, mult) = match v.as_bytes().last() {
        Some(b'k') | Some(b'K') => (&v[..v.len() - 1], 1_000),
        Some(b'm') | Some(b'M') => (&v[..v.len() - 1], 1_000_000),
        _ => (v, 1),
    };
    digits
        .parse::<u64>()
        .map(|n| n * mult)
        .map_err(|e| format!("{v}: {e}"))
}

fn parse(args: &[String]) -> Result<Options, String> {
    let mut o = Options::default();
    let mut net_only: Vec<&'static str> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{arg} requires a value"))
        };
        match arg.as_str() {
            "--app" => o.apps = vec![value()?],
            "--apps" => o.apps = value()?.split(',').map(str::to_string).collect(),
            "--ops" => o.ops = parse_count(&value()?)? as usize,
            "--shards" => o.sweep = vec![value()?.parse().map_err(|e| format!("--shards: {e}"))?],
            "--sweep" => {
                o.sweep = value()?
                    .split(',')
                    .map(|s| s.parse().map_err(|e| format!("--sweep: {e}")))
                    .collect::<Result<_, _>>()?
            }
            "--mode" => o.mode = value()?,
            "--rate" => o.rate = parse_count(&value()?)? as f64,
            "--queue-depth" => {
                o.queue_depth = value()?
                    .parse()
                    .map_err(|e| format!("--queue-depth: {e}"))?
            }
            "--seed" => o.seed = value()?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--lines" => o.ws_lines = parse_count(&value()?)?,
            "--pool" => o.pool = value()?.parse().map_err(|e| format!("--pool: {e}"))?,
            "--batch" => o.batch = value()?.parse().map_err(|e| format!("--batch: {e}"))?,
            "--coalesce" => {
                o.coalesce = value()?.parse().map_err(|e| format!("--coalesce: {e}"))?
            }
            "--producers" => {
                o.producers = value()?.parse().map_err(|e| format!("--producers: {e}"))?
            }
            "--out" => o.out = value()?,
            "--persist-dir" => o.persist_dir = Some(value()?),
            "--fsm" => {
                o.fsm = match value()?.as_str() {
                    "flat" => FsmPolicy::Flat,
                    "tree" => FsmPolicy::Tree,
                    "tree-wear" => FsmPolicy::TreeWear,
                    other => return Err(format!("--fsm: unknown policy {other:?}")),
                }
            }
            "--cache-policy" => {
                o.cache_policy = value()?
                    .parse::<Replacement>()
                    .map_err(|e| format!("--cache-policy: {e}"))?
            }
            "--digest-mode" => {
                o.digest_mode = value()?
                    .parse::<DigestMode>()
                    .map_err(|e| format!("--digest-mode: {e}"))?
            }
            "--fsm-churn" => {
                o.fsm_churn = value()?
                    .split(',')
                    .map(|s| s.parse().map_err(|e| format!("--fsm-churn: {e}")))
                    .collect::<Result<_, _>>()?
            }
            "--net" => o.net = Some(value()?),
            "--connections" => {
                net_only.push("--connections");
                o.connections = value()?
                    .split(',')
                    .map(|s| s.parse().map_err(|e| format!("--connections: {e}")))
                    .collect::<Result<_, _>>()?
            }
            "--window" => {
                net_only.push("--window");
                o.net_window = value()?.parse().map_err(|e| format!("--window: {e}"))?
            }
            "--client-threads" => {
                net_only.push("--client-threads");
                o.client_threads = value()?
                    .parse()
                    .map_err(|e| format!("--client-threads: {e}"))?
            }
            "--net-shutdown" => {
                net_only.push("--net-shutdown");
                o.net_shutdown = true
            }
            "--check" => o.check = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown option {other}")),
        }
    }
    if o.sweep.is_empty() || o.sweep.iter().any(|&s| s == 0 || s > 16) {
        return Err("shard counts must be in 1..=16".into());
    }
    if o.mode != "closed" && o.mode != "open" {
        return Err(format!("unknown mode {:?}", o.mode));
    }
    if o.apps.is_empty() {
        return Err("need at least one app".into());
    }
    if o.batch == 0 {
        return Err("--batch must be at least 1".into());
    }
    if o.fsm_churn.iter().any(|&t| t == 0 || t > 64) {
        return Err("--fsm-churn thread counts must be in 1..=64".into());
    }
    if o.net.is_none() {
        if let Some(flag) = net_only.first() {
            return Err(format!("{flag} only makes sense with --net"));
        }
    }
    if o.connections.is_empty() || o.connections.iter().any(|&c| c == 0 || c > 4096) {
        return Err("--connections entries must be in 1..=4096".into());
    }
    if o.net_window == 0 {
        return Err("--window must be at least 1".into());
    }
    Ok(o)
}

struct AppTrace {
    records: Vec<TraceRecord>,
    lines: u64,
    writes: u64,
    oracle_dup_ratio: f64,
}

/// Generate one app's trace (warmup + `ops` records) and its ground-truth
/// duplication ratio.
fn generate(app: &str, o: &Options) -> Option<AppTrace> {
    let mut profile = app_by_name(app)?;
    profile.working_set_lines = o.ws_lines;
    profile.content_pool_size = o.pool;
    let mut gen = TraceGenerator::new(profile, 256, o.seed);
    let lines = gen.required_lines();
    let mut oracle = DupOracle::new();
    let mut records = gen.warmup_records();
    for rec in &records {
        oracle.observe_warmup(rec);
    }
    for rec in gen.by_ref().take(o.ops) {
        oracle.observe(&rec);
        records.push(rec);
    }
    let writes = records.iter().filter(|r| r.op.is_write()).count() as u64;
    Some(AppTrace {
        records,
        lines,
        writes,
        oracle_dup_ratio: oracle.stats().dup_ratio(),
    })
}

fn num(n: u64) -> Json {
    Json::Num(n as f64)
}

fn flt(f: f64) -> Json {
    Json::Num(f)
}

fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
}

fn run_json(engine_run: &EngineRun, global_rate: f64, producers: usize) -> Json {
    let host = engine_run.host_latency();
    let m = &engine_run.merged;
    let per_shard: Vec<Json> = engine_run
        .shards
        .iter()
        .map(|s| {
            let mut fields = vec![
                ("shard", num(s.shard as u64)),
                ("ops", num(s.ops)),
                ("dedup_rate", flt(s.dedup_rate)),
                ("queue_depth_peak", num(s.queue_depth_peak as u64)),
                ("queue_depth_mean", flt(s.queue_depth_mean)),
                ("producer_stall_ns", num(s.producer_stall_ns)),
                ("fsm_claims", num(s.fsm.claims)),
                ("fsm_refills", num(s.fsm.refills)),
                ("fsm_steals", num(s.fsm.steals)),
                (
                    "fsm_scan_steps_per_claim",
                    flt(s.fsm.scan_steps_per_claim()),
                ),
                ("cache_hits", num(s.cache.hits)),
                ("cache_misses", num(s.cache.misses)),
                ("cache_hit_rate", flt(s.cache.hit_rate())),
                ("cache_small_hits", num(s.cache.small_hits)),
                ("cache_main_hits", num(s.cache.main_hits)),
                ("cache_ghost_hits", num(s.cache.ghost_hits)),
                ("cache_scan_evictions", num(s.cache.scan_evictions)),
            ];
            if let Some(Ok(checked)) = &s.scrub {
                fields.push(("scrub_lines", num(*checked)));
            }
            obj(fields)
        })
        .collect();
    obj(vec![
        ("shards", num(engine_run.shards.len() as u64)),
        ("producers", num(producers as u64)),
        ("ops", num(engine_run.ops)),
        ("wall_ms", flt(engine_run.wall_ns as f64 / 1e6)),
        ("ops_per_sec", flt(engine_run.ops_per_sec())),
        ("host_p50_ns", num(host.p50_ns())),
        ("host_p95_ns", num(host.p95_ns())),
        ("host_p99_ns", num(host.p99_ns())),
        ("dedup_rate", flt(engine_run.dedup_rate())),
        (
            "dedup_delta_vs_global",
            flt(engine_run.dedup_rate() - global_rate),
        ),
        (
            "sim",
            obj(vec![
                ("writes", num(m.base.writes)),
                ("writes_eliminated", num(m.base.writes_eliminated)),
                ("coalesced_writes", num(m.base.coalesced_writes)),
                ("reads", num(m.base.reads)),
                ("nvm_data_writes", num(m.nvm_data_writes)),
                ("aes_line_ops", num(m.base.aes_line_ops)),
                ("verify_reads", num(m.base.verify_reads)),
                ("write_mean_ns", flt(m.write_latency.mean_ns())),
                ("write_p99_ns", num(m.write_latency_hist.p99_ns())),
                (
                    "predictor_accuracy",
                    flt(m.dewrite.map_or(0.0, |d| d.predictor_accuracy)),
                ),
            ]),
        ),
        ("per_shard", Json::Arr(per_shard)),
    ])
}

/// Run `threads` churn workers (claim a line, release it, repeat) against
/// one shared allocator; `alloc` must be thread-safe through `&self`.
/// Returns aggregate claims per second.
fn churn_mops<A: Sync>(
    threads: usize,
    ops_per_thread: u64,
    alloc: &A,
    claim: impl Fn(&A, usize, &mut Reservation) -> Option<u64> + Sync,
    release: impl Fn(&A, u64) + Sync,
    finish: impl Fn(&A, &mut Reservation) + Sync,
) -> f64 {
    let start = std::time::Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let claim = &claim;
            let release = &release;
            let finish = &finish;
            s.spawn(move || {
                let mut r = Reservation::new();
                for _ in 0..ops_per_thread {
                    let line = claim(alloc, t, &mut r).expect("churn map never exhausts");
                    release(alloc, line);
                }
                finish(alloc, &mut r);
            });
        }
    });
    let secs = start.elapsed().as_secs_f64();
    (threads as u64 * ops_per_thread) as f64 / secs / 1e6
}

/// The standalone allocator contention sweep: flat `AtomicBitmap` vs
/// hierarchical `FsmTree` alloc/release churn at each requested thread
/// count. Appends a check failure / sets `check_skipped` per the tiered
/// speedup gate when `--check` is on.
fn fsm_churn_sweep(
    o: &Options,
    parallelism: usize,
    failures: &mut Vec<String>,
    check_skipped: &mut bool,
) -> Json {
    let ops_per_thread = (o.ops as u64).max(10_000);
    let max_threads = o.fsm_churn.iter().copied().max().unwrap_or(1);
    // Each thread gets its own comfortable region so exhaustion never
    // races: the contention under test is the allocator's metadata (the
    // flat map's shared free count vs the tree's per-chunk counters), not
    // free-line scarcity.
    let lines = (max_threads as u64) * 4 * dewrite_nvm::CHUNK_LINES;
    let mut rows: Vec<Json> = Vec::new();
    println!("fsm churn sweep: {lines} lines, {ops_per_thread} claim/release pairs per thread");
    for &threads in &o.fsm_churn {
        let flat = AtomicBitmap::new(lines);
        let flat_mops = churn_mops(
            threads,
            ops_per_thread,
            &flat,
            |a, t, _| a.allocate((t as u64 * lines) / threads as u64),
            |a, line| {
                assert!(a.release(line));
            },
            |_, _| {},
        );
        assert_eq!(flat.free_lines(), lines, "flat churn must conserve");

        let tree = FsmTree::new(lines);
        let tree_mops = churn_mops(
            threads,
            ops_per_thread,
            &tree,
            |a, _, r| a.allocate_reserved(r),
            |a, line| {
                assert!(a.release(line));
            },
            FsmTree::drain_reservation_stats,
        );
        assert_eq!(tree.free_lines(), lines, "tree churn must conserve");
        let stats = tree.stats();

        let speedup = if flat_mops > 0.0 {
            tree_mops / flat_mops
        } else {
            0.0
        };
        println!(
            "  threads={threads:<2} flat {flat_mops:>8.2} Mclaims/s  tree {tree_mops:>8.2} \
             Mclaims/s  speedup {speedup:.2}x  refills {} steals {}",
            stats.refills, stats.steals
        );
        if o.check && threads >= 4 {
            if parallelism >= threads {
                // Reserved-chunk claims must beat the shared-counter flat
                // map once there's real parallelism.
                let need = 1.2;
                if speedup < need {
                    failures.push(format!(
                        "fsm-churn: {threads}-thread tree speedup only {speedup:.2}x \
                         (need >= {need}x on a {parallelism}-way host)"
                    ));
                }
            } else {
                *check_skipped = true;
                println!(
                    "  SKIPPED: {threads}-thread fsm-churn speedup assertion \
                     (available_parallelism={parallelism} < {threads})"
                );
            }
        }
        rows.push(obj(vec![
            ("threads", num(threads as u64)),
            ("flat_mclaims_per_sec", flt(flat_mops)),
            ("tree_mclaims_per_sec", flt(tree_mops)),
            ("tree_speedup", flt(speedup)),
            ("tree_refills", num(stats.refills)),
            ("tree_steals", num(stats.steals)),
            (
                "tree_scan_steps_per_claim",
                flt(stats.scan_steps_per_claim()),
            ),
        ]));
    }
    obj(vec![
        ("lines", num(lines)),
        ("ops_per_thread", num(ops_per_thread)),
        ("runs", Json::Arr(rows)),
    ])
}

/// Connect + handshake with retries: in CI the server may still be
/// binding when the client starts.
fn connect_retry(addr: &str, hello: &Hello) -> std::io::Result<(Control, HelloInfo)> {
    let mut last: Option<std::io::Error> = None;
    for _ in 0..50 {
        match Control::connect(addr, hello) {
            Ok(ok) => return Ok(ok),
            Err(e) if e.kind() == std::io::ErrorKind::ConnectionRefused => {
                last = Some(e);
                std::thread::sleep(Duration::from_millis(100));
            }
            Err(e) => return Err(e),
        }
    }
    Err(last.unwrap_or_else(|| std::io::Error::other("connect retries exhausted")))
}

/// Socket-client mode: replay each app's trace against a running
/// `dewrite-serve` at each connection count, asserting the server's
/// per-shard reports are bit-identical to a local in-process run.
fn net_main(o: &Options, addr: &str, parallelism: usize) -> ExitCode {
    let pacing = if o.mode == "open" {
        Pacing::Open {
            ops_per_sec: o.rate,
        }
    } else {
        Pacing::Closed
    };
    let mut failures: Vec<String> = Vec::new();
    let mut check_skipped = false;
    let mut app_objs: Vec<Json> = Vec::new();

    for app in &o.apps {
        let Some(trace) = generate(app, o) else {
            eprintln!("unknown application {app:?}");
            return usage();
        };
        println!(
            "{app}: {} ops ({} writes, oracle dup ratio {:.3}) over the wire at {addr}",
            trace.records.len(),
            trace.writes,
            trace.oracle_dup_ratio
        );
        let hello = Hello {
            version: NET_VERSION,
            line_size: 256,
            lines: trace.lines,
            expected_writes: trace.writes,
            cache_policy: o.cache_policy.to_wire(),
            digest_mode: o.digest_mode.to_wire(),
            app: app.clone(),
        };
        let mut expected_report: Option<String> = None;
        let mut runs: Vec<Json> = Vec::new();
        for &connections in &o.connections {
            // A many-connection replay on a tiny host measures scheduler
            // thrash, not the server; drop the entry and say so.
            if parallelism < 4 && connections > 64 {
                check_skipped = true;
                println!(
                    "  SKIPPED: {connections}-connection entry \
                     (available_parallelism={parallelism} < 4)"
                );
                continue;
            }
            let entry = (|| -> std::io::Result<Json> {
                let (mut control, info) = connect_retry(addr, &hello)?;
                if expected_report.is_none() {
                    // The local shadow run: same geometry the server
                    // derived, same trace — its per-shard reports are the
                    // bit-identity oracle.
                    let mut config =
                        EngineConfig::for_workload(info.shards, 256, trace.lines, trace.writes);
                    config.cache_policy = o.cache_policy;
                    config.digest_mode = o.digest_mode;
                    if config.slots_per_shard != info.slots_per_shard {
                        return Err(std::io::Error::other(format!(
                            "server sized {} slots/shard where the local config \
                             derives {} — version drift?",
                            info.slots_per_shard, config.slots_per_shard
                        )));
                    }
                    let baseline = run(&config, app, trace.records.clone());
                    expected_report = Some(format!(
                        "[{}]",
                        baseline
                            .shards
                            .iter()
                            .map(|s| s.report.to_json().to_string())
                            .collect::<Vec<_>>()
                            .join(",")
                    ));
                }
                let summary = drive(
                    &DriveOptions {
                        addr: addr.to_string(),
                        connections,
                        window: o.net_window,
                        threads: o.client_threads,
                        pacing,
                    },
                    &hello,
                    &trace.records,
                )?;
                control.flush()?;
                let scrub_lines = if o.check {
                    Some(control.scrub()?)
                } else {
                    None
                };
                let server_report = control.report()?;
                let report_match = Some(&server_report) == expected_report.as_ref();
                control.reset()?;
                println!(
                    "  conns={connections:<4} {:>10.0} ops/s  p50 {} ns  p99 {} ns  \
                     errors {}  report_match {report_match}",
                    summary.ops_per_sec(),
                    summary.host_latency.p50_ns(),
                    summary.host_latency.p99_ns(),
                    summary.errors
                );
                if o.check {
                    if !report_match {
                        failures.push(format!(
                            "{app}: {connections}-connection replay diverged from the \
                             in-process per-shard reports"
                        ));
                    }
                    if summary.errors > 0 {
                        failures.push(format!(
                            "{app}: {connections}-connection replay saw {} error responses",
                            summary.errors
                        ));
                    }
                }
                let mut fields = vec![
                    ("connections", num(connections as u64)),
                    ("ops", num(summary.ops)),
                    ("wall_ms", flt(summary.wall_ns as f64 / 1e6)),
                    ("ops_per_sec", flt(summary.ops_per_sec())),
                    ("window", num(summary.window as u64)),
                    ("host_p50_ns", num(summary.host_latency.p50_ns())),
                    ("host_p95_ns", num(summary.host_latency.p95_ns())),
                    ("host_p99_ns", num(summary.host_latency.p99_ns())),
                    ("errors", num(summary.errors)),
                    ("report_match", Json::Bool(report_match)),
                ];
                if let Some(lines) = scrub_lines {
                    fields.push(("scrub_lines", num(lines)));
                }
                Ok(obj(fields))
            })();
            match entry {
                Ok(j) => runs.push(j),
                Err(e) => {
                    failures.push(format!("{app}: {connections}-connection entry failed: {e}"))
                }
            }
        }
        app_objs.push(obj(vec![
            ("app", Json::Str(app.clone())),
            ("trace_ops", num(trace.records.len() as u64)),
            ("trace_writes", num(trace.writes)),
            ("oracle_dup_ratio", flt(trace.oracle_dup_ratio)),
            ("runs", Json::Arr(runs)),
        ]));
    }

    if o.net_shutdown {
        if let Err(e) = client::request_shutdown(addr) {
            failures.push(format!("shutdown request failed: {e}"));
        }
    }

    let doc = obj(vec![
        ("schema_version", num(1)),
        ("tool", Json::Str("loadgen".into())),
        (
            "config",
            obj(vec![
                ("ops", num(o.ops as u64)),
                ("working_set_lines", num(o.ws_lines)),
                ("content_pool", num(o.pool as u64)),
                ("cache_policy", Json::Str(o.cache_policy.to_string())),
                ("digest_mode", Json::Str(o.digest_mode.to_string())),
                ("mode", Json::Str(o.mode.clone())),
                ("rate_ops_per_sec", flt(o.rate)),
                ("seed", num(o.seed)),
                ("check", Json::Bool(o.check)),
            ]),
        ),
        ("available_parallelism", num(parallelism as u64)),
        ("check_skipped", Json::Bool(check_skipped)),
        // In-process runs live under `apps`; a net-mode export keeps the
        // key (empty) so consumers can treat both shapes uniformly.
        ("apps", Json::Arr(Vec::new())),
        (
            "net",
            obj(vec![
                ("addr", Json::Str(addr.to_string())),
                ("window", num(o.net_window as u64)),
                ("client_threads", num(o.client_threads as u64)),
                (
                    "connections",
                    Json::Arr(o.connections.iter().map(|&c| num(c as u64)).collect()),
                ),
                ("apps", Json::Arr(app_objs)),
            ]),
        ),
    ]);
    if let Err(e) = std::fs::write(&o.out, format!("{doc}\n")) {
        eprintln!("error: writing {}: {e}", o.out);
        return ExitCode::FAILURE;
    }
    println!("wrote {}", o.out);

    if failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        eprintln!("\n{} check failure(s):", failures.len());
        for f in &failures {
            eprintln!("  FAIL {f}");
        }
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let o = match parse(&args) {
        Ok(o) => o,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}\n");
            }
            return usage();
        }
    };

    let parallelism = std::thread::available_parallelism().map_or(1, |n| n.get());

    if let Some(addr) = o.net.clone() {
        return net_main(&o, &addr, parallelism);
    }

    // The allocator contention sweep is standalone: no app traces, just
    // flat-vs-tree churn at each thread count.
    if !o.fsm_churn.is_empty() {
        let mut failures: Vec<String> = Vec::new();
        let mut check_skipped = false;
        let contention = fsm_churn_sweep(&o, parallelism, &mut failures, &mut check_skipped);
        let doc = obj(vec![
            ("schema_version", num(1)),
            ("tool", Json::Str("loadgen".into())),
            (
                "config",
                obj(vec![
                    ("ops", num(o.ops as u64)),
                    (
                        "fsm_churn",
                        Json::Arr(o.fsm_churn.iter().map(|&t| num(t as u64)).collect()),
                    ),
                    ("check", Json::Bool(o.check)),
                ]),
            ),
            ("available_parallelism", num(parallelism as u64)),
            ("check_skipped", Json::Bool(check_skipped)),
            ("fsm_contention", contention),
        ]);
        if let Err(e) = std::fs::write(&o.out, format!("{doc}\n")) {
            eprintln!("error: writing {}: {e}", o.out);
            return ExitCode::FAILURE;
        }
        println!("wrote {}", o.out);
        if failures.is_empty() {
            return ExitCode::SUCCESS;
        }
        eprintln!("\n{} check failure(s):", failures.len());
        for f in &failures {
            eprintln!("  FAIL {f}");
        }
        return ExitCode::FAILURE;
    }

    // Always measure shards=1 first: the global-dedup baseline and the
    // speedup denominator.
    let mut sweep = o.sweep.clone();
    if !sweep.contains(&1) {
        sweep.insert(0, 1);
    }
    sweep.sort_unstable();
    sweep.dedup();

    let pacing = if o.mode == "open" {
        Pacing::Open {
            ops_per_sec: o.rate,
        }
    } else {
        Pacing::Closed
    };

    let mut app_objs: Vec<Json> = Vec::new();
    let mut failures: Vec<String> = Vec::new();
    // Whether any requested speedup assertion could not run on this host;
    // recorded in the JSON so CI on a capable runner can refuse a silently
    // skipped check.
    let mut check_skipped = false;
    if o.check && !sweep.iter().any(|&s| s >= 4) {
        check_skipped = true;
        println!("SKIPPED: multi-shard speedup assertion (no sweep entry >= 4 shards)");
    }

    for app in &o.apps {
        let Some(trace) = generate(app, &o) else {
            eprintln!("unknown application {app:?}");
            return usage();
        };
        println!(
            "{app}: {} ops ({} writes), oracle dup ratio {:.3}",
            trace.records.len(),
            trace.writes,
            trace.oracle_dup_ratio
        );

        let mut global_rate = 0.0;
        let mut single_ops_per_sec = 0.0;
        let mut runs: Vec<Json> = Vec::new();
        for &shards in &sweep {
            let mut config = EngineConfig::for_workload(shards, 256, trace.lines, trace.writes);
            config.queue_depth = o.queue_depth;
            config.key = DEFAULT_KEY;
            config.pacing = pacing;
            config.scrub = o.check;
            config.batch = o.batch;
            config.coalesce = o.coalesce;
            config.producers = o.producers;
            config.fsm = o.fsm;
            config.cache_policy = o.cache_policy;
            config.digest_mode = o.digest_mode;
            if let Some(root) = &o.persist_dir {
                // One store per (app, shard count) run so sweeps don't
                // overwrite each other's recovery state.
                config.persist_dir =
                    Some(std::path::Path::new(root).join(format!("{app}-s{shards}")));
            }
            let producers = config.effective_producers();
            let result = run(&config, app, trace.records.clone());
            if shards == 1 {
                global_rate = result.dedup_rate();
                single_ops_per_sec = result.ops_per_sec();
            }
            println!(
                "  shards={shards:<2} {:>10.0} ops/s  dedup {:.3} (delta {:+.4})  p99 {} ns",
                result.ops_per_sec(),
                result.dedup_rate(),
                result.dedup_rate() - global_rate,
                result.host_latency().p99_ns(),
            );
            for s in &result.shards {
                if let Some(Err(e)) = &s.scrub {
                    failures.push(format!("{app}: shard {} scrub failed: {e}", s.shard));
                }
            }
            if o.check && shards >= 4 {
                let speedup = result.ops_per_sec() / single_ops_per_sec;
                // Batched runs with a dedicated core for every thread must
                // scale hard; a merely 4-way host gets the softer bar.
                let full_threads = shards + producers + 1;
                let need = if o.batch > 1 && parallelism >= full_threads {
                    2.5
                } else if parallelism >= 4 {
                    1.5
                } else {
                    0.0
                };
                if need == 0.0 {
                    check_skipped = true;
                    println!(
                        "  SKIPPED: {shards}-shard speedup assertion \
                         (available_parallelism={parallelism} < 4)"
                    );
                } else if speedup < need {
                    failures.push(format!(
                        "{app}: {shards}-shard throughput only {speedup:.2}x of 1-shard \
                         (need >= {need}x on a {parallelism}-way host, batch {})",
                        o.batch
                    ));
                }
            }
            runs.push(run_json(&result, global_rate, producers));
        }
        app_objs.push(obj(vec![
            ("app", Json::Str(app.clone())),
            ("trace_ops", num(trace.records.len() as u64)),
            ("trace_writes", num(trace.writes)),
            ("oracle_dup_ratio", flt(trace.oracle_dup_ratio)),
            ("global_dedup_rate", flt(global_rate)),
            ("runs", Json::Arr(runs)),
        ]));
    }

    let doc = obj(vec![
        ("schema_version", num(1)),
        ("tool", Json::Str("loadgen".into())),
        (
            "config",
            obj(vec![
                ("ops", num(o.ops as u64)),
                ("working_set_lines", num(o.ws_lines)),
                ("content_pool", num(o.pool as u64)),
                ("queue_depth", num(o.queue_depth as u64)),
                ("batch", num(o.batch as u64)),
                ("coalesce", num(o.coalesce as u64)),
                ("producers", num(o.producers as u64)),
                (
                    "fsm",
                    Json::Str(
                        match o.fsm {
                            FsmPolicy::Flat => "flat",
                            FsmPolicy::Tree => "tree",
                            FsmPolicy::TreeWear => "tree-wear",
                        }
                        .into(),
                    ),
                ),
                ("cache_policy", Json::Str(o.cache_policy.to_string())),
                ("digest_mode", Json::Str(o.digest_mode.to_string())),
                ("mode", Json::Str(o.mode.clone())),
                (
                    "persist_dir",
                    match &o.persist_dir {
                        Some(p) => Json::Str(p.clone()),
                        None => Json::Null,
                    },
                ),
                ("rate_ops_per_sec", flt(o.rate)),
                ("seed", num(o.seed)),
                (
                    "sweep",
                    Json::Arr(sweep.iter().map(|&s| num(s as u64)).collect()),
                ),
                ("check", Json::Bool(o.check)),
            ]),
        ),
        ("available_parallelism", num(parallelism as u64)),
        ("check_skipped", Json::Bool(check_skipped)),
        ("apps", Json::Arr(app_objs)),
    ]);
    if let Err(e) = std::fs::write(&o.out, format!("{doc}\n")) {
        eprintln!("error: writing {}: {e}", o.out);
        return ExitCode::FAILURE;
    }
    println!("wrote {}", o.out);

    if failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        eprintln!("\n{} check failure(s):", failures.len());
        for f in &failures {
            eprintln!("  FAIL {f}");
        }
        ExitCode::FAILURE
    }
}
