//! Write-ahead log format: a fingerprinted file header followed by
//! checksummed, length-prefixed epoch records.
//!
//! ```text
//! file   := header record*
//! header := magic "DWWL" · version u16 · crc u32 (over fingerprint) · fingerprint u64
//! record := len u32 · crc u32 (over payload) · payload
//! payload:= base_writes u64 · writes_covered u64 · op_count u32 · op*
//! op     := tag u8 · fields (fixed size per tag, little-endian)
//! ```
//!
//! Each record is the epoch batch of data writes `(base_writes,
//! writes_covered]`: all the [`MetaOp`]s those writes applied. The write
//! counts chain consecutive records (and checkpoints), so recovery can
//! detect a gap — as opposed to a *tail* that simply ends early, which is
//! the expected shape of a crash and is silently discarded.
//!
//! Decoding never trusts a length or count before bounding it against the
//! bytes actually present, and any structural violation from some offset
//! onward is classified as a torn tail at that offset: a torn record is
//! *detected and dropped*, never partially applied.

use dewrite_core::MetaOp;
use dewrite_hashes::Crc32;

use crate::PersistError;

/// Magic bytes opening every WAL segment.
pub const WAL_MAGIC: [u8; 4] = *b"DWWL";
/// Current WAL format version. v2 widened `ResidentSet.digest` from u32 to
/// u64 to carry the strong keyed tag; v1 segments are rejected at open (the
/// recovery path then falls back to the snapshot alone).
pub const WAL_VERSION: u16 = 2;
/// Size of the WAL file header, bytes.
pub const WAL_HEADER_BYTES: usize = 18;
/// Hard ceiling on one record's payload: 16 MB is far above any epoch
/// batch (an epoch of 64 writes logs at most a few KB).
pub const MAX_RECORD_BYTES: usize = 1 << 24;

/// Smallest encoded op (`ResidentDel`: tag + u64).
const MIN_OP_BYTES: usize = 9;
/// Fixed payload bytes before the ops (`base`, `covered`, `op_count`).
const RECORD_FIXED_BYTES: usize = 20;

/// One epoch record: the metadata mutations of data writes
/// `(base_writes, writes_covered]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Total data writes covered *before* this epoch.
    pub base_writes: u64,
    /// Total data writes covered after applying this record.
    pub writes_covered: u64,
    /// The mutations, in application order.
    pub ops: Vec<MetaOp>,
}

/// How a decoded WAL segment ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalTail {
    /// The segment ends exactly after its last complete record.
    Clean,
    /// The segment tears at `offset`: `bytes` trailing bytes do not form a
    /// complete valid record and must be discarded (never replayed).
    Torn {
        /// Byte offset of the first unusable byte.
        offset: usize,
        /// Number of discarded bytes.
        bytes: usize,
    },
}

/// A decoded WAL segment: every complete valid record plus the tail state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedWal {
    /// Complete, checksum-valid records in file order.
    pub records: Vec<WalRecord>,
    /// Whether (and where) the segment tears.
    pub tail: WalTail,
}

/// Encode the 18-byte segment header for `fingerprint`.
pub fn encode_wal_header(fingerprint: u64) -> [u8; WAL_HEADER_BYTES] {
    let fp = fingerprint.to_le_bytes();
    let crc = Crc32::new().checksum(&fp);
    let mut h = [0u8; WAL_HEADER_BYTES];
    h[0..4].copy_from_slice(&WAL_MAGIC);
    h[4..6].copy_from_slice(&WAL_VERSION.to_le_bytes());
    h[6..10].copy_from_slice(&crc.to_le_bytes());
    h[10..18].copy_from_slice(&fp);
    h
}

fn encode_op(op: &MetaOp, out: &mut Vec<u8>) {
    match *op {
        MetaOp::MapSet { init, real } => {
            out.push(0);
            out.extend_from_slice(&init.to_le_bytes());
            out.extend_from_slice(&real.to_le_bytes());
        }
        MetaOp::ResidentSet { real, digest } => {
            out.push(1);
            out.extend_from_slice(&real.to_le_bytes());
            out.extend_from_slice(&digest.to_le_bytes());
        }
        MetaOp::ResidentDel { real } => {
            out.push(2);
            out.extend_from_slice(&real.to_le_bytes());
        }
        MetaOp::CounterSet { line, value } => {
            out.push(3);
            out.extend_from_slice(&line.to_le_bytes());
            out.extend_from_slice(&value.to_le_bytes());
        }
    }
}

fn take_u64(cur: &mut &[u8]) -> Option<u64> {
    if cur.len() < 8 {
        return None;
    }
    let (head, rest) = cur.split_at(8);
    *cur = rest;
    Some(u64::from_le_bytes(head.try_into().expect("8 bytes")))
}

fn take_u32(cur: &mut &[u8]) -> Option<u32> {
    if cur.len() < 4 {
        return None;
    }
    let (head, rest) = cur.split_at(4);
    *cur = rest;
    Some(u32::from_le_bytes(head.try_into().expect("4 bytes")))
}

fn decode_op(cur: &mut &[u8]) -> Option<MetaOp> {
    let (&tag, rest) = cur.split_first()?;
    *cur = rest;
    match tag {
        0 => Some(MetaOp::MapSet {
            init: take_u64(cur)?,
            real: take_u64(cur)?,
        }),
        1 => Some(MetaOp::ResidentSet {
            real: take_u64(cur)?,
            digest: take_u64(cur)?,
        }),
        2 => Some(MetaOp::ResidentDel {
            real: take_u64(cur)?,
        }),
        3 => Some(MetaOp::CounterSet {
            line: take_u64(cur)?,
            value: take_u32(cur)?,
        }),
        _ => None,
    }
}

/// Encode one record as `len · crc · payload` bytes, ready to append.
pub fn encode_record(rec: &WalRecord) -> Vec<u8> {
    let mut payload = Vec::with_capacity(RECORD_FIXED_BYTES + rec.ops.len() * 17);
    payload.extend_from_slice(&rec.base_writes.to_le_bytes());
    payload.extend_from_slice(&rec.writes_covered.to_le_bytes());
    payload.extend_from_slice(&(rec.ops.len() as u32).to_le_bytes());
    for op in &rec.ops {
        encode_op(op, &mut payload);
    }
    assert!(
        payload.len() <= MAX_RECORD_BYTES,
        "epoch record exceeds MAX_RECORD_BYTES"
    );
    let crc = Crc32::new().checksum(&payload);
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc.to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Decode one record payload (already checksum-verified). `None` means the
/// payload is structurally invalid despite the matching CRC (possible only
/// under a checksum collision) — callers treat it as torn.
fn decode_payload(mut cur: &[u8]) -> Option<WalRecord> {
    let base_writes = take_u64(&mut cur)?;
    let writes_covered = take_u64(&mut cur)?;
    if writes_covered <= base_writes {
        return None;
    }
    let count = take_u32(&mut cur)? as usize;
    if count > cur.len() / MIN_OP_BYTES {
        return None;
    }
    let mut ops = Vec::with_capacity(count);
    for _ in 0..count {
        ops.push(decode_op(&mut cur)?);
    }
    if !cur.is_empty() {
        return None;
    }
    Some(WalRecord {
        base_writes,
        writes_covered,
        ops,
    })
}

/// Decode a WAL segment image.
///
/// A missing/short/corrupt *header* classifies the whole segment as torn
/// at offset 0 (the crash happened before the header reached the medium).
/// A valid header whose fingerprint differs from `fingerprint` is a hard
/// [`PersistError::ConfigMismatch`]; an unsupported version is
/// [`PersistError::Corrupt`]. From the first structurally invalid or
/// checksum-failing record onward, everything is a torn tail: detected,
/// reported, and excluded from `records`.
///
/// # Errors
///
/// Only the two hard cases above error; torn data never does.
pub fn decode_wal(bytes: &[u8], fingerprint: u64) -> Result<DecodedWal, PersistError> {
    let torn_all = || DecodedWal {
        records: Vec::new(),
        tail: WalTail::Torn {
            offset: 0,
            bytes: bytes.len(),
        },
    };
    if bytes.len() < WAL_HEADER_BYTES || bytes[0..4] != WAL_MAGIC {
        return Ok(torn_all());
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    let crc = u32::from_le_bytes(bytes[6..10].try_into().expect("4 bytes"));
    let fp_bytes: [u8; 8] = bytes[10..18].try_into().expect("8 bytes");
    if Crc32::new().checksum(&fp_bytes) != crc {
        return Ok(torn_all());
    }
    if version != WAL_VERSION {
        return Err(PersistError::Corrupt(format!(
            "unsupported WAL version {version} (expected {WAL_VERSION})"
        )));
    }
    let fp = u64::from_le_bytes(fp_bytes);
    if fp != fingerprint {
        return Err(PersistError::ConfigMismatch(format!(
            "WAL was written under config fingerprint {fp:#018x}, expected {fingerprint:#018x}"
        )));
    }

    let mut records = Vec::new();
    let mut offset = WAL_HEADER_BYTES;
    loop {
        let rest = &bytes[offset..];
        if rest.is_empty() {
            return Ok(DecodedWal {
                records,
                tail: WalTail::Clean,
            });
        }
        let torn = DecodedWal {
            records: Vec::new(),
            tail: WalTail::Torn {
                offset,
                bytes: rest.len(),
            },
        };
        if rest.len() < 8 {
            return Ok(DecodedWal { records, ..torn });
        }
        let len = u32::from_le_bytes(rest[0..4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(rest[4..8].try_into().expect("4 bytes"));
        if len > MAX_RECORD_BYTES || rest.len() - 8 < len {
            return Ok(DecodedWal { records, ..torn });
        }
        let payload = &rest[8..8 + len];
        if Crc32::new().checksum(payload) != crc {
            return Ok(DecodedWal { records, ..torn });
        }
        match decode_payload(payload) {
            Some(rec) => records.push(rec),
            None => return Ok(DecodedWal { records, ..torn }),
        }
        offset += 8 + len;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord {
                base_writes: 0,
                writes_covered: 4,
                ops: vec![
                    MetaOp::ResidentSet { real: 3, digest: 9 },
                    MetaOp::MapSet { init: 0, real: 3 },
                    MetaOp::CounterSet { line: 3, value: 1 },
                ],
            },
            WalRecord {
                base_writes: 4,
                writes_covered: 8,
                ops: vec![
                    MetaOp::MapSet { init: 1, real: 3 },
                    MetaOp::ResidentDel { real: 7 },
                ],
            },
        ]
    }

    fn encode_segment(records: &[WalRecord], fp: u64) -> Vec<u8> {
        let mut out = encode_wal_header(fp).to_vec();
        for r in records {
            out.extend_from_slice(&encode_record(r));
        }
        out
    }

    #[test]
    fn roundtrip() {
        let recs = sample_records();
        let bytes = encode_segment(&recs, 42);
        let decoded = decode_wal(&bytes, 42).expect("decode");
        assert_eq!(decoded.records, recs);
        assert_eq!(decoded.tail, WalTail::Clean);
    }

    #[test]
    fn fingerprint_mismatch_is_a_hard_error() {
        let bytes = encode_segment(&sample_records(), 42);
        assert!(matches!(
            decode_wal(&bytes, 43),
            Err(PersistError::ConfigMismatch(_))
        ));
    }

    #[test]
    fn short_or_garbled_header_is_torn_empty() {
        let d = decode_wal(b"DW", 0).expect("decode");
        assert!(d.records.is_empty());
        assert_eq!(
            d.tail,
            WalTail::Torn {
                offset: 0,
                bytes: 2
            }
        );
        let d = decode_wal(b"", 0).expect("decode");
        assert!(d.records.is_empty());

        let mut bytes = encode_segment(&[], 7);
        bytes[11] ^= 0x10; // corrupt the fingerprint under its CRC
        let d = decode_wal(&bytes, 7).expect("decode");
        assert!(d.records.is_empty());
        assert!(matches!(d.tail, WalTail::Torn { offset: 0, .. }));
    }

    #[test]
    fn truncation_at_every_offset_keeps_a_prefix() {
        let recs = sample_records();
        let bytes = encode_segment(&recs, 9);
        for cut in 0..bytes.len() {
            let d = decode_wal(&bytes[..cut], 9);
            // Fingerprint errors can't occur: either the header is torn or
            // it matches.
            let d = d.expect("no hard error on truncation");
            assert!(d.records.len() <= recs.len(), "cut {cut} invented records");
            for (got, want) in d.records.iter().zip(&recs) {
                assert_eq!(got, want, "cut {cut} altered a record");
            }
            if cut < bytes.len() {
                assert!(
                    matches!(d.tail, WalTail::Torn { .. }) || d.records.len() < recs.len(),
                    "cut {cut} reported a clean full decode of a truncated image"
                );
            }
        }
    }

    #[test]
    fn record_bit_flips_never_add_or_alter_records() {
        let recs = sample_records();
        let bytes = encode_segment(&recs, 9);
        for byte in WAL_HEADER_BYTES..bytes.len() {
            for bit in 0..8 {
                let mut corrupt = bytes.clone();
                corrupt[byte] ^= 1 << bit;
                let d = decode_wal(&corrupt, 9).expect("flips are torn, not errors");
                // Every surviving record must be a verbatim prefix element.
                for (got, want) in d.records.iter().zip(&recs) {
                    assert_eq!(got, want, "flip at {byte}:{bit} altered a record");
                }
                assert!(d.records.len() <= recs.len());
            }
        }
    }

    #[test]
    fn oversized_length_prefix_is_torn_not_allocated() {
        let mut bytes = encode_wal_header(1).to_vec();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        let d = decode_wal(&bytes, 1).expect("decode");
        assert!(d.records.is_empty());
        assert!(matches!(d.tail, WalTail::Torn { offset, .. } if offset == WAL_HEADER_BYTES));
    }

    #[test]
    fn op_count_is_bounded_by_payload() {
        // Valid CRC, absurd op count: decode_payload must bail before
        // reserving.
        let mut payload = Vec::new();
        payload.extend_from_slice(&0u64.to_le_bytes());
        payload.extend_from_slice(&1u64.to_le_bytes());
        payload.extend_from_slice(&u32::MAX.to_le_bytes());
        let crc = Crc32::new().checksum(&payload);
        let mut bytes = encode_wal_header(1).to_vec();
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&crc.to_le_bytes());
        bytes.extend_from_slice(&payload);
        let d = decode_wal(&bytes, 1).expect("decode");
        assert!(d.records.is_empty());
        assert!(matches!(d.tail, WalTail::Torn { .. }));
    }
}
