//! Shared experiment machinery: workload construction, scheme construction,
//! and parallel per-application runs.

use dewrite_core::{
    BitEncoding, CmeBaseline, DeWrite, DeWriteConfig, RunReport, SilentShredder, Simulator,
    SystemConfig, TraditionalDedup, WriteMode,
};
use dewrite_hashes::HashAlgorithm;
use dewrite_trace::{AppProfile, TraceGenerator, TraceRecord};

/// Encryption key used by every experiment (value irrelevant; fixed for
/// determinism).
pub const KEY: &[u8; 16] = b"dewrite-repro-16";

/// Base RNG seed for trace generation.
pub const SEED: u64 = 0xDE_17_17_E5;

/// Experiment scale: how many writes each per-app trace contains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Writes per application trace.
    pub writes: usize,
    /// Working-set lines per application (overrides the profile).
    pub working_set_lines: u64,
    /// Content-pool size per application (overrides the profile).
    pub content_pool: usize,
}

impl Scale {
    /// Quick smoke-test scale.
    pub fn quick() -> Self {
        Scale {
            writes: 4_000,
            working_set_lines: 1 << 12,
            content_pool: 512,
        }
    }

    /// Default reporting scale.
    pub fn default_scale() -> Self {
        Scale {
            writes: 20_000,
            working_set_lines: 1 << 14,
            content_pool: 1024,
        }
    }

    /// Full scale (slow; closest to the paper's footprints).
    pub fn full() -> Self {
        Scale {
            writes: 80_000,
            working_set_lines: 1 << 16,
            content_pool: 2048,
        }
    }

    /// Apply the scale overrides to a profile.
    pub fn shape(&self, mut profile: AppProfile) -> AppProfile {
        profile.working_set_lines = self.working_set_lines;
        profile.content_pool_size = self.content_pool;
        profile
    }
}

/// A generated, reusable workload for one application.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The (scaled) profile.
    pub profile: AppProfile,
    /// Warmup records (pool seeding).
    pub warmup: Vec<TraceRecord>,
    /// The measured trace.
    pub trace: Vec<TraceRecord>,
    /// Write operations actually present in `trace`. Equals the requested
    /// `Scale::writes` unless the generator ran dry first.
    pub writes: usize,
}

/// Pull records from `records` until `target_writes` write operations have
/// been collected or the source runs dry. Returns the trace and the number
/// of writes actually collected.
fn collect_trace(
    records: impl Iterator<Item = TraceRecord>,
    target_writes: usize,
) -> (Vec<TraceRecord>, usize) {
    let mut trace = Vec::new();
    let mut writes = 0usize;
    for rec in records {
        if writes >= target_writes {
            break;
        }
        if rec.op.is_write() {
            writes += 1;
        }
        trace.push(rec);
    }
    (trace, writes)
}

impl Workload {
    /// Generate the workload for `profile` at `scale` with a per-app seed.
    pub fn generate(profile: &AppProfile, scale: Scale, seed: u64) -> Self {
        let shaped = scale.shape(profile.clone());
        let mut gen = TraceGenerator::new(shaped.clone(), 256, seed);
        let warmup = gen.warmup_records();
        let (trace, writes) = collect_trace(&mut gen, scale.writes);
        if writes < scale.writes {
            eprintln!(
                "warning: trace generator for {} ran dry at {writes}/{} writes; \
                 results are for the shorter trace",
                shaped.name, scale.writes
            );
        }
        Workload {
            profile: shaped,
            warmup,
            trace,
            writes,
        }
    }

    /// The system configuration sized for this workload.
    pub fn system_config(&self) -> SystemConfig {
        let lines = self.profile.working_set_lines + self.profile.content_pool_size as u64 + 64;
        SystemConfig::for_lines(lines)
    }
}

/// Which scheme to instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchemeKind {
    /// Traditional secure NVM (CME only).
    Baseline,
    /// DeWrite with the paper configuration.
    DeWrite,
    /// DeWrite forced into a specific write mode (Fig. 15/20).
    DeWriteMode(WriteMode),
    /// DeWrite with PNA disabled (ablation).
    DeWriteNoPna,
    /// DeWrite with a custom hasher (ablation).
    DeWriteHasher(HashAlgorithm),
    /// Traditional crypto-fingerprint dedup (Table I).
    Traditional(HashAlgorithm),
    /// Silent Shredder: zero-line elimination only (§V).
    SilentShredder,
}

impl SchemeKind {
    /// Short label for tables.
    pub fn label(&self) -> String {
        match self {
            SchemeKind::Baseline => "baseline".into(),
            SchemeKind::DeWrite => "dewrite".into(),
            SchemeKind::DeWriteMode(m) => format!("dewrite-{m}"),
            SchemeKind::DeWriteNoPna => "dewrite-nopna".into(),
            SchemeKind::DeWriteHasher(h) => format!("dewrite-{h}"),
            SchemeKind::Traditional(h) => format!("traditional-{h}"),
            SchemeKind::SilentShredder => "silent-shredder".into(),
        }
    }
}

/// Run one (scheme × workload) simulation, returning the report with
/// DeWrite metrics attached when applicable.
pub fn run_scheme(kind: SchemeKind, workload: &Workload) -> RunReport {
    run_scheme_encoded(kind, workload, BitEncoding::Dcw)
}

/// Like [`run_scheme`] with an explicit cell-level write encoding.
pub fn run_scheme_encoded(
    kind: SchemeKind,
    workload: &Workload,
    encoding: BitEncoding,
) -> RunReport {
    let mut config = workload.system_config();
    config.bit_encoding = encoding;
    let sim = Simulator::new(&config);
    let app = workload.profile.name;
    match kind {
        SchemeKind::Baseline => {
            let mut mem = CmeBaseline::new(config, KEY);
            sim.run(
                &mut mem,
                app,
                &workload.warmup,
                workload.trace.iter().cloned(),
            )
            .expect("trace fits configuration")
        }
        SchemeKind::DeWrite
        | SchemeKind::DeWriteMode(_)
        | SchemeKind::DeWriteNoPna
        | SchemeKind::DeWriteHasher(_) => {
            let mut dw = DeWriteConfig::paper();
            match kind {
                // The mode variants isolate the encryption-ordering axis of
                // Fig. 3 — everything else (incl. PNA) stays as in DeWrite.
                SchemeKind::DeWriteMode(m) => dw.mode = m,
                SchemeKind::DeWriteNoPna => dw.pna = false,
                SchemeKind::DeWriteHasher(h) => dw.hasher = h,
                _ => {}
            }
            let mut mem = DeWrite::new(config, dw, KEY);
            let mut report = sim
                .run(
                    &mut mem,
                    app,
                    &workload.warmup,
                    workload.trace.iter().cloned(),
                )
                .expect("trace fits configuration");
            report.dewrite = Some(mem.dewrite_metrics());
            report
        }
        SchemeKind::Traditional(h) => {
            let mut mem = TraditionalDedup::new(config, h, KEY);
            sim.run(
                &mut mem,
                app,
                &workload.warmup,
                workload.trace.iter().cloned(),
            )
            .expect("trace fits configuration")
        }
        SchemeKind::SilentShredder => {
            let mut mem = SilentShredder::new(config, KEY);
            sim.run(
                &mut mem,
                app,
                &workload.warmup,
                workload.trace.iter().cloned(),
            )
            .expect("trace fits configuration")
        }
    }
}

/// Run `f` for every profile in parallel, preserving input order.
pub fn par_map_apps<T, F>(profiles: &[AppProfile], f: F) -> Vec<T>
where
    T: Send,
    F: Fn(&AppProfile, u64) -> T + Sync,
{
    let threads = std::thread::available_parallelism()
        .map_or(4, |n| n.get())
        .min(profiles.len().max(1));
    let results: Vec<std::sync::Mutex<Option<T>>> = profiles
        .iter()
        .map(|_| std::sync::Mutex::new(None))
        .collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= profiles.len() {
                    break;
                }
                let out = f(&profiles[i], SEED.wrapping_add(i as u64));
                *results[i].lock().expect("no poisoned locks") = Some(out);
            });
        }
    });
    results
        .into_iter()
        .map(|m| m.into_inner().expect("lock").expect("filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dewrite_trace::app_by_name;

    #[test]
    fn workload_generation_is_deterministic() {
        let p = app_by_name("mcf").unwrap();
        let a = Workload::generate(&p, Scale::quick(), 1);
        let b = Workload::generate(&p, Scale::quick(), 1);
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.warmup, b.warmup);
        let writes = a.trace.iter().filter(|r| r.op.is_write()).count();
        assert_eq!(writes, Scale::quick().writes);
    }

    #[test]
    fn run_scheme_produces_populated_reports() {
        let p = app_by_name("lbm").unwrap();
        let w = Workload::generate(
            &p,
            Scale {
                writes: 1_000,
                working_set_lines: 1 << 10,
                content_pool: 128,
            },
            2,
        );
        let dw = run_scheme(SchemeKind::DeWrite, &w);
        assert!(dw.dewrite.is_some());
        assert!(dw.write_reduction() > 0.5);
        let base = run_scheme(SchemeKind::Baseline, &w);
        assert_eq!(base.write_reduction(), 0.0);
        assert!(dw.write_speedup_vs(&base) > 1.0);
    }

    #[test]
    fn collect_trace_reports_short_traces() {
        use dewrite_nvm::LineAddr;
        use dewrite_trace::TraceOp;
        let rec = |i: u64, write: bool| TraceRecord {
            gap_instructions: 1,
            op: if write {
                TraceOp::Write {
                    addr: LineAddr::new(i),
                    data: vec![0u8; 4],
                }
            } else {
                TraceOp::Read {
                    addr: LineAddr::new(i),
                }
            },
        };
        // Generator runs dry after 3 writes when 10 were requested: the
        // actual count must be surfaced, not silently truncated.
        let short: Vec<_> = (0..6).map(|i| rec(i, i % 2 == 0)).collect();
        let (trace, writes) = collect_trace(short.clone().into_iter(), 10);
        assert_eq!(writes, 3);
        assert_eq!(trace.len(), 6);
        // And a source with plenty of records stops at the target.
        let (trace, writes) = collect_trace(short.into_iter().cycle(), 5);
        assert_eq!(writes, 5);
        assert_eq!(trace.iter().filter(|r| r.op.is_write()).count(), 5);
    }

    #[test]
    fn par_map_preserves_order() {
        let apps: Vec<_> = dewrite_trace::all_apps().into_iter().take(6).collect();
        let names = par_map_apps(&apps, |p, _| p.name.to_string());
        let expect: Vec<_> = apps.iter().map(|p| p.name.to_string()).collect();
        assert_eq!(names, expect);
    }

    #[test]
    fn scheme_labels() {
        assert_eq!(SchemeKind::Baseline.label(), "baseline");
        assert_eq!(
            SchemeKind::DeWriteMode(WriteMode::Direct).label(),
            "dewrite-direct"
        );
        assert_eq!(
            SchemeKind::Traditional(HashAlgorithm::Sha1).label(),
            "traditional-SHA-1"
        );
    }
}
