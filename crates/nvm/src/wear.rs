//! Endurance (wear) tracking.
//!
//! PCM cells endure 10^7–10^8 programming cycles (§I). The tracker records
//! per-line write counts and programmed-bit counts so experiments can report
//! write reduction (Fig. 12), bit-flip rates (Fig. 13), and derived lifetime
//! estimates.

use std::collections::HashMap;

use crate::line::LineAddr;

/// Per-line and aggregate wear statistics.
#[derive(Debug, Clone, Default)]
pub struct WearTracker {
    line_writes: HashMap<u64, u64>,
    total_line_writes: u64,
    total_bits_flipped: u64,
    total_bits_written: u64,
}

impl WearTracker {
    /// A fresh tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a line write that flipped `bits_flipped` of `line_bits` cells.
    pub fn record_write(&mut self, addr: LineAddr, bits_flipped: u64, line_bits: u64) {
        *self.line_writes.entry(addr.index()).or_insert(0) += 1;
        self.total_line_writes += 1;
        self.total_bits_flipped += bits_flipped;
        self.total_bits_written += line_bits;
    }

    /// Total whole-line writes observed.
    pub fn total_line_writes(&self) -> u64 {
        self.total_line_writes
    }

    /// Total programmed (flipped) bits.
    pub fn total_bits_flipped(&self) -> u64 {
        self.total_bits_flipped
    }

    /// Average fraction of bits flipped per write (Fig. 13's y-axis).
    pub fn bit_flip_ratio(&self) -> f64 {
        if self.total_bits_written == 0 {
            0.0
        } else {
            self.total_bits_flipped as f64 / self.total_bits_written as f64
        }
    }

    /// Write count of the single most-written line (wear hot spot).
    pub fn max_line_writes(&self) -> u64 {
        self.line_writes.values().copied().max().unwrap_or(0)
    }

    /// Number of distinct lines ever written.
    pub fn distinct_lines_written(&self) -> usize {
        self.line_writes.len()
    }

    /// Writes observed on one line.
    pub fn line_writes(&self, addr: LineAddr) -> u64 {
        self.line_writes.get(&addr.index()).copied().unwrap_or(0)
    }

    /// Relative lifetime versus a baseline tracker processing the same
    /// workload: `baseline max-wear / our max-wear` (>1 means we last
    /// longer). Returns `None` if either tracker saw no writes.
    pub fn relative_lifetime_vs(&self, baseline: &WearTracker) -> Option<f64> {
        let ours = self.max_line_writes();
        let theirs = baseline.max_line_writes();
        if ours == 0 || theirs == 0 {
            None
        } else {
            Some(theirs as f64 / ours as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate() {
        let mut w = WearTracker::new();
        w.record_write(LineAddr::new(1), 100, 2048);
        w.record_write(LineAddr::new(1), 50, 2048);
        w.record_write(LineAddr::new(2), 10, 2048);
        assert_eq!(w.total_line_writes(), 3);
        assert_eq!(w.total_bits_flipped(), 160);
        assert_eq!(w.line_writes(LineAddr::new(1)), 2);
        assert_eq!(w.line_writes(LineAddr::new(3)), 0);
        assert_eq!(w.max_line_writes(), 2);
        assert_eq!(w.distinct_lines_written(), 2);
    }

    #[test]
    fn flip_ratio() {
        let mut w = WearTracker::new();
        assert_eq!(w.bit_flip_ratio(), 0.0);
        w.record_write(LineAddr::new(0), 1024, 2048);
        assert!((w.bit_flip_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn relative_lifetime() {
        let mut dedup = WearTracker::new();
        let mut base = WearTracker::new();
        for _ in 0..10 {
            base.record_write(LineAddr::new(7), 1024, 2048);
        }
        for _ in 0..5 {
            dedup.record_write(LineAddr::new(7), 1024, 2048);
        }
        assert_eq!(dedup.relative_lifetime_vs(&base), Some(2.0));
        assert_eq!(WearTracker::new().relative_lifetime_vs(&base), None);
    }
}
