//! Counter-mode and direct encryption engines over cache lines.

use crate::counter::LineCounter;
use crate::Aes128;

/// Latency of encrypting one 256 B line through the AES pipeline, in ns
/// (§IV-A of the paper: "we set the latency of AES encryption to 96 ns per
/// line").
pub const AES_LINE_LATENCY_NS: u64 = 96;

/// Energy of one 128-bit AES block operation, in picojoules (§IV-A: 5.9 nJ
/// per 128-bit block).
pub const AES_BLOCK_ENERGY_PJ: u64 = 5_900;

/// Latency added to a read's critical path by the final XOR of counter-mode
/// decryption when the pad was precomputed (≈1 cycle; negligible but modeled).
pub const OTP_XOR_LATENCY_NS: u64 = 1;

/// Energy of encrypting one line of `len` bytes (`len`/16 AES blocks).
pub fn aes_line_energy_pj(line_len: usize) -> u64 {
    (line_len as u64).div_ceil(16) * AES_BLOCK_ENERGY_PJ
}

/// Counter-mode encryption engine (Fig. 1 of the paper).
///
/// The one-time pad for block *i* of the line at address *a* with counter *c*
/// is `AES_K(a ‖ c ‖ i)`; encryption and decryption XOR the data with the
/// pad. Distinct addresses and incrementing per-line counters guarantee pad
/// uniqueness.
///
/// ```
/// use dewrite_crypto::{CounterModeEngine, LineCounter};
/// let engine = CounterModeEngine::new(&[7u8; 16]);
/// let plaintext = vec![0xABu8; 256];
/// let ctr = LineCounter::from_value(3);
/// let ct = engine.encrypt_line(&plaintext, 0x1000, ctr);
/// assert_ne!(ct, plaintext);
/// assert_eq!(engine.decrypt_line(&ct, 0x1000, ctr), plaintext);
/// ```
#[derive(Debug, Clone)]
pub struct CounterModeEngine {
    aes: Aes128,
}

impl CounterModeEngine {
    /// Create an engine keyed with the processor's secret `key`.
    pub fn new(key: &[u8; 16]) -> Self {
        CounterModeEngine {
            aes: Aes128::new(key),
        }
    }

    /// Compute the OTP block for (`addr`, `counter`, `block_idx`).
    fn pad_block(&self, addr: u64, counter: LineCounter, block_idx: u32) -> [u8; 16] {
        let mut seed = [0u8; 16];
        seed[0..8].copy_from_slice(&addr.to_le_bytes());
        seed[8..12].copy_from_slice(&counter.value().to_le_bytes());
        seed[12..16].copy_from_slice(&block_idx.to_le_bytes());
        self.aes.encrypt_block(&seed)
    }

    /// Write the one-time pad for a line of `out.len()` bytes into `out`,
    /// without allocating.
    ///
    /// Exposed so callers that overlap pad generation with an NVM read (the
    /// counter-cache-hit fast path) can model the two steps separately.
    pub fn one_time_pad_into(&self, addr: u64, counter: LineCounter, out: &mut [u8]) {
        for (block_idx, chunk) in out.chunks_mut(16).enumerate() {
            let pad = self.pad_block(addr, counter, block_idx as u32);
            chunk.copy_from_slice(&pad[..chunk.len()]);
        }
    }

    /// Generate the full one-time pad for a line of `len` bytes.
    ///
    /// Allocating convenience wrapper over [`Self::one_time_pad_into`]; hot
    /// paths should hold a scratch buffer and call the `_into` form.
    pub fn one_time_pad(&self, addr: u64, counter: LineCounter, len: usize) -> Vec<u8> {
        let mut pad = vec![0u8; len];
        self.one_time_pad_into(addr, counter, &mut pad);
        pad
    }

    /// Encrypt `plaintext` for storage at `addr` under `counter`, writing the
    /// ciphertext into `out` without allocating.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != plaintext.len()`.
    pub fn encrypt_line_into(
        &self,
        plaintext: &[u8],
        addr: u64,
        counter: LineCounter,
        out: &mut [u8],
    ) {
        assert_eq!(
            out.len(),
            plaintext.len(),
            "ciphertext buffer must match plaintext length"
        );
        for (block_idx, (pt, ct)) in plaintext.chunks(16).zip(out.chunks_mut(16)).enumerate() {
            let pad = self.pad_block(addr, counter, block_idx as u32);
            for ((c, p), k) in ct.iter_mut().zip(pt.iter()).zip(pad.iter()) {
                *c = p ^ k;
            }
        }
    }

    /// Decrypt `ciphertext` read from `addr` under `counter` into `out`.
    ///
    /// XOR is an involution, so this is the same operation as encryption.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != ciphertext.len()`.
    pub fn decrypt_line_into(
        &self,
        ciphertext: &[u8],
        addr: u64,
        counter: LineCounter,
        out: &mut [u8],
    ) {
        self.encrypt_line_into(ciphertext, addr, counter, out);
    }

    /// Encrypt `plaintext` for storage at `addr` under `counter`.
    ///
    /// Allocating convenience wrapper over [`Self::encrypt_line_into`].
    pub fn encrypt_line(&self, plaintext: &[u8], addr: u64, counter: LineCounter) -> Vec<u8> {
        let mut out = vec![0u8; plaintext.len()];
        self.encrypt_line_into(plaintext, addr, counter, &mut out);
        out
    }

    /// Decrypt `ciphertext` read from `addr` under `counter`.
    ///
    /// XOR is an involution, so this is the same operation as encryption.
    pub fn decrypt_line(&self, ciphertext: &[u8], addr: u64, counter: LineCounter) -> Vec<u8> {
        self.encrypt_line(ciphertext, addr, counter)
    }
}

/// Direct (block-cipher) encryption, used for the metadata region (§III-B1:
/// "to avoid storing the counters of the metadata, the metadata are encrypted
/// using the direct encryption scheme").
///
/// Each 16-byte block is passed through AES, whitened with its address so
/// identical blocks at different addresses produce different ciphertext
/// (an ECB-with-tweak construction; the simulator needs realistic ciphertext
/// bytes, not a production XTS implementation). Decryption cannot overlap
/// the memory read — that latency asymmetry versus counter mode is exactly
/// what the paper exploits by keeping metadata cache hit rates high.
///
/// ```
/// use dewrite_crypto::DirectEngine;
/// let engine = DirectEngine::new(&[9u8; 16]);
/// let data = vec![0x11u8; 64];
/// let ct = engine.encrypt(&data, 0x40);
/// assert_eq!(engine.decrypt(&ct, 0x40), data);
/// ```
#[derive(Debug, Clone)]
pub struct DirectEngine {
    aes: Aes128,
}

impl DirectEngine {
    /// Create a direct-encryption engine keyed with `key`.
    pub fn new(key: &[u8; 16]) -> Self {
        DirectEngine {
            aes: Aes128::new(key),
        }
    }

    fn tweak(addr: u64, block_idx: u32) -> [u8; 16] {
        let mut t = [0u8; 16];
        t[0..8].copy_from_slice(&addr.to_le_bytes());
        t[8..12].copy_from_slice(&block_idx.to_le_bytes());
        t
    }

    /// Encrypt `data` (padded to 16-byte blocks) stored at `addr`, writing
    /// the ciphertext into `out` without allocating.
    ///
    /// # Panics
    ///
    /// Panics if `out.len()` is not `data.len()` rounded up to a multiple of
    /// 16 (the ciphertext length).
    pub fn encrypt_into(&self, data: &[u8], addr: u64, out: &mut [u8]) {
        assert_eq!(
            out.len(),
            data.len().div_ceil(16) * 16,
            "ciphertext buffer must be the block-padded data length"
        );
        for (i, (chunk, ct)) in data.chunks(16).zip(out.chunks_exact_mut(16)).enumerate() {
            let mut block = [0u8; 16];
            block[..chunk.len()].copy_from_slice(chunk);
            let tweak = Self::tweak(addr, i as u32);
            for (b, t) in block.iter_mut().zip(tweak.iter()) {
                *b ^= t;
            }
            ct.copy_from_slice(&self.aes.encrypt_block(&block));
        }
    }

    /// Encrypt `data` (padded internally to 16-byte blocks) stored at `addr`.
    ///
    /// Allocating convenience wrapper over [`Self::encrypt_into`].
    pub fn encrypt(&self, data: &[u8], addr: u64) -> Vec<u8> {
        let mut out = vec![0u8; data.len().div_ceil(16) * 16];
        self.encrypt_into(data, addr, &mut out);
        out
    }

    /// Decrypt `data` read from `addr` into `out` without allocating.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` is not a multiple of 16 — direct-encrypted
    /// metadata is always written in whole blocks — or if
    /// `out.len() != data.len()`.
    pub fn decrypt_into(&self, data: &[u8], addr: u64, out: &mut [u8]) {
        assert!(
            data.len().is_multiple_of(16),
            "direct-encrypted data must be block aligned, got {} bytes",
            data.len()
        );
        assert_eq!(out.len(), data.len(), "plaintext buffer must match data");
        for (i, (chunk, pt_out)) in data
            .chunks_exact(16)
            .zip(out.chunks_exact_mut(16))
            .enumerate()
        {
            let block: [u8; 16] = chunk.try_into().expect("chunks_exact yields 16");
            let mut pt = self.aes.decrypt_block(&block);
            let tweak = Self::tweak(addr, i as u32);
            for (b, t) in pt.iter_mut().zip(tweak.iter()) {
                *b ^= t;
            }
            pt_out.copy_from_slice(&pt);
        }
    }

    /// Decrypt `data` read from `addr`.
    ///
    /// Allocating convenience wrapper over [`Self::decrypt_into`].
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` is not a multiple of 16.
    pub fn decrypt(&self, data: &[u8], addr: u64) -> Vec<u8> {
        let mut out = vec![0u8; data.len()];
        self.decrypt_into(data, addr, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn engine() -> CounterModeEngine {
        CounterModeEngine::new(b"0123456789abcdef")
    }

    #[test]
    fn ctr_roundtrip_256b() {
        let e = engine();
        let pt: Vec<u8> = (0..256).map(|i| (i * 7 % 251) as u8).collect();
        let ct = e.encrypt_line(&pt, 0xDEAD_BEEF, LineCounter::from_value(5));
        assert_eq!(
            e.decrypt_line(&ct, 0xDEAD_BEEF, LineCounter::from_value(5)),
            pt
        );
    }

    #[test]
    fn pads_differ_across_addresses() {
        let e = engine();
        let c = LineCounter::from_value(1);
        assert_ne!(e.one_time_pad(0, c, 64), e.one_time_pad(256, c, 64));
    }

    #[test]
    fn pads_differ_across_counters() {
        let e = engine();
        assert_ne!(
            e.one_time_pad(0, LineCounter::from_value(1), 64),
            e.one_time_pad(0, LineCounter::from_value(2), 64)
        );
    }

    #[test]
    fn wrong_counter_garbles_decryption() {
        let e = engine();
        let pt = vec![0x55u8; 256];
        let ct = e.encrypt_line(&pt, 0x100, LineCounter::from_value(9));
        assert_ne!(e.decrypt_line(&ct, 0x100, LineCounter::from_value(10)), pt);
    }

    #[test]
    fn diffusion_rewrite_flips_about_half_the_bits() {
        // The core premise of the paper: rewriting the *same* plaintext with
        // an incremented counter flips ~50% of the ciphertext bits.
        let e = engine();
        let pt = vec![0u8; 256];
        let c1 = e.encrypt_line(&pt, 0x2000, LineCounter::from_value(1));
        let c2 = e.encrypt_line(&pt, 0x2000, LineCounter::from_value(2));
        let flipped: u32 = c1
            .iter()
            .zip(c2.iter())
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        let ratio = f64::from(flipped) / 2048.0;
        assert!((0.40..0.60).contains(&ratio), "flip ratio {ratio}");
    }

    #[test]
    fn energy_model() {
        assert_eq!(aes_line_energy_pj(256), 16 * AES_BLOCK_ENERGY_PJ);
        assert_eq!(aes_line_energy_pj(64), 4 * AES_BLOCK_ENERGY_PJ);
        assert_eq!(aes_line_energy_pj(1), AES_BLOCK_ENERGY_PJ);
    }

    #[test]
    fn direct_rejects_ragged_decrypt() {
        let d = DirectEngine::new(&[1; 16]);
        let result = std::panic::catch_unwind(|| d.decrypt(&[0u8; 15], 0));
        assert!(result.is_err());
    }

    #[test]
    fn direct_identical_blocks_differ_by_address() {
        let d = DirectEngine::new(&[1; 16]);
        let data = [0xEEu8; 16];
        assert_ne!(d.encrypt(&data, 0x0), d.encrypt(&data, 0x10));
    }

    #[test]
    fn into_buffer_forms_match_allocating_forms() {
        let e = engine();
        let pt: Vec<u8> = (0..256).map(|i| (i * 13 % 251) as u8).collect();
        let c = LineCounter::from_value(7);

        let mut ct_buf = [0u8; 256];
        e.encrypt_line_into(&pt, 0xF00, c, &mut ct_buf);
        assert_eq!(ct_buf.to_vec(), e.encrypt_line(&pt, 0xF00, c));

        let mut pad_buf = [0u8; 256];
        e.one_time_pad_into(0xF00, c, &mut pad_buf);
        assert_eq!(pad_buf.to_vec(), e.one_time_pad(0xF00, c, 256));

        let mut rt = [0u8; 256];
        e.decrypt_line_into(&ct_buf, 0xF00, c, &mut rt);
        assert_eq!(rt.to_vec(), pt);

        let d = DirectEngine::new(&[3; 16]);
        let data = [0x5Au8; 48];
        let mut dct = [0u8; 48];
        d.encrypt_into(&data, 0x80, &mut dct);
        assert_eq!(dct.to_vec(), d.encrypt(&data, 0x80));
        let mut dpt = [0u8; 48];
        d.decrypt_into(&dct, 0x80, &mut dpt);
        assert_eq!(dpt, data);
    }

    #[test]
    fn otp_into_handles_ragged_tail() {
        let e = engine();
        let c = LineCounter::from_value(2);
        let mut buf = [0u8; 37];
        e.one_time_pad_into(0x40, c, &mut buf);
        assert_eq!(buf.to_vec(), e.one_time_pad(0x40, c, 37));
    }

    proptest! {
        #[test]
        fn ctr_roundtrip_any(
            key in any::<[u8; 16]>(),
            pt in proptest::collection::vec(any::<u8>(), 1..300),
            addr in any::<u64>(),
            ctr in 0u32..=crate::counter::COUNTER_MAX,
        ) {
            let e = CounterModeEngine::new(&key);
            let c = LineCounter::from_value(ctr);
            let ct = e.encrypt_line(&pt, addr, c);
            prop_assert_eq!(e.decrypt_line(&ct, addr, c), pt);
        }

        #[test]
        fn direct_roundtrip_block_multiples(
            key in any::<[u8; 16]>(),
            blocks in 1usize..8,
            addr in any::<u64>(),
            seed in any::<u8>(),
        ) {
            let d = DirectEngine::new(&key);
            let data: Vec<u8> = (0..blocks * 16).map(|i| seed.wrapping_add(i as u8)).collect();
            let ct = d.encrypt(&data, addr);
            prop_assert_eq!(d.decrypt(&ct, addr), data);
        }
    }
}
