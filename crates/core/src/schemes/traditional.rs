//! Traditional in-line deduplication with a cryptographic fingerprint.
//!
//! The strawman of Table I: storage-style deduplication ported to the
//! memory controller. A SHA-1 (or MD5) fingerprint is computed for every
//! written line — 321/312 ns, longer than the 300 ns NVM write itself — and
//! a fingerprint match is *trusted* (no confirmation read), as storage
//! systems do. Detection is serial with encryption; there is no prediction.
//!
//! Functionally, fingerprints are compared at full digest width, so the
//! scheme is as correct as DeWrite; it is the *latency* that disqualifies it
//! (§III-B1), which the `tab1`/latency experiments demonstrate.

use std::collections::HashMap;

use dewrite_crypto::{
    aes_line_energy_pj, CounterModeEngine, LineCounter, AES_LINE_LATENCY_NS, OTP_XOR_LATENCY_NS,
};
use dewrite_hashes::{HashAlgorithm, LineHasher};
use dewrite_mem::Replacement;
use dewrite_nvm::{LineAddr, NvmDevice, NvmError};

use crate::config::SystemConfig;
use crate::dedup::{DedupIndex, WriteOutcome};
use crate::schemes::{BaseMetrics, MetaTable, ReadResult, SecureMemory, WriteResult};

/// In-line dedup with a cryptographic fingerprint (Table I's "Traditional").
pub struct TraditionalDedup {
    config: SystemConfig,
    device: NvmDevice,
    engine: CounterModeEngine,
    hasher: Box<dyn LineHasher>,
    index: DedupIndex,
    /// Full-width fingerprints per resident line — matches are trusted at
    /// fingerprint width, not confirmed by reading data.
    fingerprints: HashMap<u64, u64>,
    counters: HashMap<u64, LineCounter>,
    meta_table: MetaTable,
    metrics: BaseMetrics,
    /// Scratch ciphertext buffer reused across writes (no per-write alloc).
    line_buf: Vec<u8>,
}

impl std::fmt::Debug for TraditionalDedup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraditionalDedup")
            .field("hasher", &self.hasher.algorithm())
            .field("writes", &self.metrics.writes)
            .finish_non_exhaustive()
    }
}

impl TraditionalDedup {
    /// Build the scheme with the given cryptographic `algorithm`
    /// (SHA-1 or MD5 make sense here).
    ///
    /// # Panics
    ///
    /// Panics if `config` fails validation.
    pub fn new(config: SystemConfig, algorithm: HashAlgorithm, key: &[u8; 16]) -> Self {
        config.validate().expect("invalid system config");
        let device = NvmDevice::new(config.nvm.clone()).expect("validated config");
        let line_size = config.nvm.line_size;
        // One unified fingerprint-store cache (2 MB of 20 B entries).
        let meta_table = MetaTable::new(
            (2 << 20) / 20,
            Replacement::Lru,
            config.meta_base(),
            config.meta_lines(),
            20,
            1,
            false,
            config.meta_cache_hit_ns,
            line_size,
        );
        TraditionalDedup {
            engine: CounterModeEngine::new(key),
            hasher: algorithm.hasher(),
            index: DedupIndex::new(config.data_lines),
            fingerprints: HashMap::new(),
            counters: HashMap::new(),
            meta_table,
            metrics: BaseMetrics::default(),
            line_buf: Vec::new(),
            device,
            config,
        }
    }

    fn check_addr(&self, addr: LineAddr) -> Result<(), NvmError> {
        if addr.index() >= self.config.data_lines {
            Err(NvmError::AddressOutOfRange {
                addr,
                num_lines: self.config.data_lines,
            })
        } else {
            Ok(())
        }
    }

    /// The dedup index (for write-reduction comparisons).
    pub fn index(&self) -> &DedupIndex {
        &self.index
    }

    fn fold(d: u64) -> u32 {
        (d ^ (d >> 32)) as u32
    }
}

impl SecureMemory for TraditionalDedup {
    fn name(&self) -> String {
        format!("traditional dedup ({})", self.hasher.algorithm())
    }

    fn write(&mut self, init: LineAddr, data: &[u8], now_ns: u64) -> Result<WriteResult, NvmError> {
        self.check_addr(init)?;
        if data.len() != self.config.nvm.line_size {
            return Err(NvmError::WrongLineSize {
                got: data.len(),
                expected: self.config.nvm.line_size,
            });
        }
        self.metrics.writes += 1;

        // Cryptographic fingerprint: the expensive step (≥312 ns).
        let cost = self.hasher.cost();
        let fingerprint = self.hasher.digest(data);
        // The index key stays the folded 32-bit value (zero-extended) so
        // probe sequences are identical to the seed; correctness comes from
        // the full-width fingerprint comparison below.
        let digest = u64::from(Self::fold(fingerprint));
        let hash_done = now_ns + cost.latency_ns;
        self.metrics.hash_ops += 1;
        self.device.charge_dedup_pj(cost.energy_pj);

        // Fingerprint-store query (t_Q of Table I).
        let q = self.meta_table.access(
            digest,
            false,
            &mut self.device,
            hash_done,
            &mut self.metrics,
        );

        // Trust the fingerprint: match at full digest width, no data read.
        let matched = self
            .index
            .candidates(digest)
            .into_iter()
            .find(|e| {
                e.reference != crate::tables::MAX_REFERENCE
                    && self.fingerprints.get(&e.real.index()) == Some(&fingerprint)
            })
            .map(|e| e.real);

        match matched {
            Some(real) => {
                self.index.apply_duplicate(init, real);
                self.metrics.writes_eliminated += 1;
                self.meta_table.write_insert(
                    init.index(),
                    &mut self.device,
                    q.done_ns,
                    &mut self.metrics,
                );
                Ok(WriteResult {
                    critical_ns: q.done_ns - now_ns,
                    nvm_finish_ns: None,
                    eliminated: true,
                    total_ns: q.done_ns - now_ns,
                })
            }
            None => {
                let outcome = self.index.apply_store(init, digest);
                let WriteOutcome::Stored { target, freed, .. } = outcome else {
                    unreachable!("apply_store returns Stored");
                };
                if let Some(freed) = freed {
                    self.fingerprints.remove(&freed.index());
                }
                self.fingerprints.insert(target.index(), fingerprint);

                // Serial: detection, then counter + encryption, then write.
                let ctr_acc = self.meta_table.access(
                    target.index(),
                    true,
                    &mut self.device,
                    q.done_ns,
                    &mut self.metrics,
                );
                let counter = self.counters.entry(target.index()).or_default();
                let _ = counter.increment();
                let counter = *counter;
                self.metrics.aes_line_ops += 1;
                self.device.charge_aes_pj(aes_line_energy_pj(data.len()));
                let enc_done = ctr_acc.done_ns + AES_LINE_LATENCY_NS;
                self.line_buf.resize(data.len(), 0);
                self.engine
                    .encrypt_line_into(data, target.index(), counter, &mut self.line_buf);
                let old = self.device.peek_line(target)?;
                let flips =
                    crate::schemes::encoded_flips(self.config.bit_encoding, &old, &self.line_buf);
                let access =
                    self.device
                        .write_line_with_flips(target, &self.line_buf, flips, enc_done)?;
                Ok(WriteResult {
                    critical_ns: enc_done - now_ns,
                    nvm_finish_ns: Some(access.slot.finish_ns),
                    eliminated: false,
                    total_ns: access.slot.finish_ns - now_ns,
                })
            }
        }
    }

    fn read(&mut self, init: LineAddr, now_ns: u64) -> Result<ReadResult, NvmError> {
        self.check_addr(init)?;
        self.metrics.reads += 1;
        let map_acc = self.meta_table.access(
            init.index(),
            false,
            &mut self.device,
            now_ns,
            &mut self.metrics,
        );
        match self.index.resolve(init) {
            Some(real) => {
                let (ciphertext, access) = self.device.read_line(real, map_acc.done_ns)?;
                let counter = *self
                    .counters
                    .get(&real.index())
                    .expect("resident has counter");
                // Read-side pad energy is not charged (write-dominated
                // accounting; see CmeBaseline::read).
                let pad_done = map_acc.done_ns + AES_LINE_LATENCY_NS;
                let done = access.slot.finish_ns.max(pad_done) + OTP_XOR_LATENCY_NS;
                let data = self.engine.decrypt_line(&ciphertext, real.index(), counter);
                Ok(ReadResult {
                    data,
                    latency_ns: done - now_ns,
                })
            }
            None => {
                // Never written: logically zero (the home line may hold a
                // relocated neighbor's ciphertext; never expose it).
                let (_, access) = self.device.read_line(init, map_acc.done_ns)?;
                Ok(ReadResult {
                    data: vec![0u8; self.config.nvm.line_size],
                    latency_ns: access.slot.finish_ns - now_ns,
                })
            }
        }
    }

    fn device(&self) -> &NvmDevice {
        &self.device
    }

    fn base_metrics(&self) -> BaseMetrics {
        self.metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KEY: &[u8; 16] = b"traditional key!";

    fn mem() -> TraditionalDedup {
        TraditionalDedup::new(SystemConfig::for_lines(2048), HashAlgorithm::Sha1, KEY)
    }

    fn line(tag: u8) -> Vec<u8> {
        vec![tag; 256]
    }

    #[test]
    fn roundtrip_and_dedup() {
        let mut m = mem();
        let data = line(1);
        let w1 = m.write(LineAddr::new(0), &data, 0).unwrap();
        assert!(!w1.eliminated);
        let w2 = m.write(LineAddr::new(1), &data, 10_000).unwrap();
        assert!(w2.eliminated);
        assert_eq!(m.read(LineAddr::new(1), 20_000).unwrap().data, data);
    }

    #[test]
    fn detection_latency_exceeds_nvm_write_latency() {
        let mut m = mem();
        let data = line(2);
        m.write(LineAddr::new(0), &data, 0).unwrap();
        let w = m.write(LineAddr::new(1), &data, 10_000).unwrap();
        // ≥ 321 ns (SHA-1) + t_Q: slower than the 300 ns write it saves.
        assert!(w.total_ns >= 321, "latency {}", w.total_ns);
    }

    #[test]
    fn no_confirmation_reads_are_issued() {
        let mut m = mem();
        let data = line(3);
        m.write(LineAddr::new(0), &data, 0).unwrap();
        m.write(LineAddr::new(1), &data, 10_000).unwrap();
        assert_eq!(m.base_metrics().verify_reads, 0);
    }

    #[test]
    fn non_duplicates_pay_hash_plus_encrypt_plus_write() {
        let mut m = mem();
        let w = m.write(LineAddr::new(0), &line(4), 0).unwrap();
        assert!(!w.eliminated);
        // Serial: ≥ 321 + 96 + 300.
        assert!(w.total_ns >= 321 + 96 + 300, "latency {}", w.total_ns);
    }

    #[test]
    fn md5_variant_works() {
        let mut m = TraditionalDedup::new(SystemConfig::for_lines(512), HashAlgorithm::Md5, KEY);
        let data = line(5);
        m.write(LineAddr::new(0), &data, 0).unwrap();
        let w = m.write(LineAddr::new(7), &data, 5_000).unwrap();
        assert!(w.eliminated);
        assert!(m.name().contains("MD5"));
    }

    #[test]
    fn owner_overwrite_keeps_shared_content() {
        let mut m = mem();
        let shared = line(6);
        m.write(LineAddr::new(0), &shared, 0).unwrap();
        m.write(LineAddr::new(1), &shared, 5_000).unwrap();
        m.write(LineAddr::new(0), &line(7), 10_000).unwrap();
        assert_eq!(m.read(LineAddr::new(1), 20_000).unwrap().data, shared);
        m.index().check_invariants().unwrap();
    }
}
