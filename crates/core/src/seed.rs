//! The seed (pre-flat) map-backed dedup structures, retained verbatim as
//! **oracles**.
//!
//! These are the `HashMap`-based implementations the flat SwissTable-style
//! layer in [`crate::tables`] replaced. They are kept — hidden from docs,
//! but compiled into the library — for two consumers:
//!
//! * the differential proptests in `tables.rs`, which drive identical op
//!   sequences through a seed table and a flat table and assert identical
//!   observable state at every step;
//! * the `hotpath` benchmark binary, which measures the flat structures
//!   *against* these as its speedup baseline (the same pattern PR 2 used
//!   for `seed_encrypt_line`).
//!
//! Do not use these in product code paths.

use std::collections::HashMap;

use dewrite_nvm::LineAddr;

use crate::tables::{HashEntry, MAX_REFERENCE};

/// Seed digest-indexed duplicate-lookup table: one heap `Vec` bucket per
/// digest, `swap_remove` deletes.
#[derive(Debug, Clone, Default)]
pub struct SeedHashTable {
    buckets: HashMap<u64, Vec<HashEntry>>,
    entries: usize,
    collision_buckets: u64,
    saturated_hits: u64,
}

impl SeedHashTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// All entries whose content hashes to `digest`, in bucket order.
    pub fn candidates(&self, digest: u64) -> &[HashEntry] {
        self.buckets.get(&digest).map_or(&[], Vec::as_slice)
    }

    /// Insert a new resident line with reference count 1.
    ///
    /// # Panics
    ///
    /// Panics if `real` is already present under `digest`.
    pub fn insert(&mut self, digest: u64, real: LineAddr) {
        self.insert_with_reference(digest, real, 1);
    }

    /// Recovery-path insert with an explicit starting reference.
    ///
    /// # Panics
    ///
    /// Panics if `real` is already present under `digest`.
    pub fn insert_with_reference(&mut self, digest: u64, real: LineAddr, reference: u8) {
        let bucket = self.buckets.entry(digest).or_default();
        assert!(
            !bucket.iter().any(|e| e.real == real),
            "line {real} already indexed under digest {digest:#x}"
        );
        bucket.push(HashEntry { real, reference });
        if bucket.len() == 2 {
            self.collision_buckets += 1;
        }
        self.entries += 1;
    }

    /// Increment the reference of `real` under `digest`; `false` when
    /// saturated.
    ///
    /// # Panics
    ///
    /// Panics if the entry does not exist.
    pub fn add_reference(&mut self, digest: u64, real: LineAddr) -> bool {
        let entry = self
            .buckets
            .get_mut(&digest)
            .and_then(|b| b.iter_mut().find(|e| e.real == real))
            .expect("add_reference on missing hash entry");
        if entry.reference == MAX_REFERENCE {
            self.saturated_hits += 1;
            return false;
        }
        entry.reference += 1;
        true
    }

    /// Decrement the reference of `real` under `digest`, removing at zero.
    ///
    /// # Panics
    ///
    /// Panics if the entry does not exist.
    pub fn release_reference(&mut self, digest: u64, real: LineAddr) -> u8 {
        let bucket = self
            .buckets
            .get_mut(&digest)
            .expect("release_reference on missing digest");
        let idx = bucket
            .iter()
            .position(|e| e.real == real)
            .expect("release_reference on missing hash entry");
        let entry = &mut bucket[idx];
        if entry.reference == MAX_REFERENCE {
            return MAX_REFERENCE;
        }
        entry.reference -= 1;
        let remaining = entry.reference;
        if remaining == 0 {
            bucket.swap_remove(idx);
            self.entries -= 1;
            if bucket.is_empty() {
                self.buckets.remove(&digest);
            }
        }
        remaining
    }

    /// Remove the entry for `real` under `digest` regardless of references.
    ///
    /// # Panics
    ///
    /// Panics if the entry does not exist.
    pub fn remove(&mut self, digest: u64, real: LineAddr) {
        let bucket = self
            .buckets
            .get_mut(&digest)
            .expect("remove on missing digest");
        let idx = bucket
            .iter()
            .position(|e| e.real == real)
            .expect("remove on missing hash entry");
        bucket.swap_remove(idx);
        self.entries -= 1;
        if bucket.is_empty() {
            self.buckets.remove(&digest);
        }
    }

    /// The reference count of `real` under `digest`, if present.
    pub fn reference(&self, digest: u64, real: LineAddr) -> Option<u8> {
        self.buckets
            .get(&digest)?
            .iter()
            .find(|e| e.real == real)
            .map(|e| e.reference)
    }

    /// Total entries across all buckets.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Buckets that ever held ≥2 entries.
    pub fn collision_buckets(&self) -> u64 {
        self.collision_buckets
    }

    /// Duplicate detections skipped because the entry was saturated.
    pub fn saturated_hits(&self) -> u64 {
        self.saturated_hits
    }
}

/// Seed initAddr → realAddr map (std `HashMap`).
#[derive(Debug, Clone, Default)]
pub struct SeedAddrMapTable {
    map: HashMap<u64, LineAddr>,
}

impl SeedAddrMapTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resolve `init` to the physical line holding its data.
    pub fn resolve(&self, init: LineAddr) -> LineAddr {
        self.map.get(&init.index()).copied().unwrap_or(init)
    }

    /// Whether `init` is deduplicated (mapped away from home).
    pub fn is_mapped(&self, init: LineAddr) -> bool {
        self.map.contains_key(&init.index())
    }

    /// Map `init` to `real`.
    ///
    /// # Panics
    ///
    /// Panics if `real == init`.
    pub fn map_to(&mut self, init: LineAddr, real: LineAddr) {
        assert_ne!(init, real, "identity mappings are implicit");
        self.map.insert(init.index(), real);
    }

    /// Remove `init`'s mapping.
    pub fn unmap(&mut self, init: LineAddr) {
        self.map.remove(&init.index());
    }

    /// Number of deduplicated (mapped) lines.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no lines are deduplicated.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Seed realAddr → digest table (std `HashMap`).
#[derive(Debug, Clone, Default)]
pub struct SeedInvertedTable {
    map: HashMap<u64, u64>,
}

impl SeedInvertedTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// The digest of the content resident at `real`, if any.
    pub fn digest_of(&self, real: LineAddr) -> Option<u64> {
        self.map.get(&real.index()).copied()
    }

    /// Record that `real` now holds content with `digest`.
    pub fn set(&mut self, real: LineAddr, digest: u64) {
        self.map.insert(real.index(), digest);
    }

    /// Clear the record for `real`. Returns the stale digest.
    pub fn clear(&mut self, real: LineAddr) -> Option<u64> {
        self.map.remove(&real.index())
    }

    /// Number of resident (hash-indexed) lines.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no lines are recorded.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}
