//! The on-disk metadata store: a directory of checkpoint/WAL segment pairs.
//!
//! ```text
//! <dir>/ckpt-00000000.dwck   checkpoint 0 (state at creation)
//! <dir>/wal-00000000.log     epochs after checkpoint 0
//! <dir>/ckpt-00000001.dwck   checkpoint 1
//! <dir>/wal-00000001.log     epochs after checkpoint 1
//! ...
//! ```
//!
//! Sequence `s`'s WAL segment logs exactly the epochs between checkpoint
//! `s` and checkpoint `s+1`. Rotation writes the new checkpoint via
//! temp-file + rename + directory fsync *before* opening the new segment,
//! and keeps the previous pair on disk (pruning only `seq ≤ current − 2`),
//! so a checkpoint torn mid-write can always be recovered past: the older
//! checkpoint plus its complete WAL segment reproduce the same state.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use crate::checkpoint::Checkpoint;
use crate::wal::{encode_record, encode_wal_header, WalRecord};

/// File-name prefix of checkpoint files.
pub(crate) const CKPT_PREFIX: &str = "ckpt-";
/// File-name extension of checkpoint files.
pub(crate) const CKPT_EXT: &str = ".dwck";
/// File-name prefix of WAL segments.
pub(crate) const WAL_PREFIX: &str = "wal-";
/// File-name extension of WAL segments.
pub(crate) const WAL_EXT: &str = ".log";

/// Path of checkpoint `seq` under `dir`.
pub(crate) fn ckpt_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("{CKPT_PREFIX}{seq:08}{CKPT_EXT}"))
}

/// Path of WAL segment `seq` under `dir`.
pub(crate) fn wal_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("{WAL_PREFIX}{seq:08}{WAL_EXT}"))
}

/// Parse `name` as `<prefix><seq><ext>`, returning the sequence number.
pub(crate) fn parse_seq(name: &str, prefix: &str, ext: &str) -> Option<u64> {
    let body = name.strip_prefix(prefix)?.strip_suffix(ext)?;
    if body.is_empty() || !body.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    body.parse().ok()
}

/// Sorted sequence numbers of all files `<prefix>*<ext>` in `dir`.
pub(crate) fn list_seqs(dir: &Path, prefix: &str, ext: &str) -> io::Result<Vec<u64>> {
    let mut seqs = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(name) = entry.file_name().to_str() {
            if let Some(seq) = parse_seq(name, prefix, ext) {
                seqs.push(seq);
            }
        }
    }
    seqs.sort_unstable();
    Ok(seqs)
}

fn sync_dir(dir: &Path) -> io::Result<()> {
    // Persist the rename itself. Directory fsync is POSIX-only; on
    // platforms where opening a directory fails, fall back to best effort.
    match File::open(dir) {
        Ok(d) => d.sync_all(),
        Err(_) => Ok(()),
    }
}

/// Owner of a store directory: appends epoch records to the active WAL
/// segment and rotates checkpoint/segment pairs.
#[derive(Debug)]
pub struct MetaStore {
    dir: PathBuf,
    fingerprint: u64,
    seq: u64,
    wal: File,
    sync: bool,
}

impl MetaStore {
    /// Create a fresh store in `dir` (created if absent; any previous
    /// checkpoint/WAL files are removed), writing checkpoint 0 from
    /// `initial` and opening WAL segment 0.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn create(
        dir: &Path,
        fingerprint: u64,
        initial: &Checkpoint,
        sync: bool,
    ) -> io::Result<Self> {
        fs::create_dir_all(dir)?;
        for seq in list_seqs(dir, CKPT_PREFIX, CKPT_EXT)? {
            fs::remove_file(ckpt_path(dir, seq))?;
        }
        for seq in list_seqs(dir, WAL_PREFIX, WAL_EXT)? {
            fs::remove_file(wal_path(dir, seq))?;
        }
        let mut store = MetaStore {
            dir: dir.to_path_buf(),
            fingerprint,
            seq: 0,
            // Placeholder; replaced by open_segment below.
            wal: File::create(wal_path(dir, 0))?,
            sync,
        };
        store.write_checkpoint_file(0, initial)?;
        store.open_segment(0)?;
        Ok(store)
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Current checkpoint/segment sequence number.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    fn write_checkpoint_file(&self, seq: u64, ckpt: &Checkpoint) -> io::Result<()> {
        let tmp = self.dir.join(format!("{CKPT_PREFIX}{seq:08}.tmp"));
        {
            let mut f = File::create(&tmp)?;
            ckpt.write_to(&mut f)?;
            if self.sync {
                f.sync_all()?;
            }
        }
        fs::rename(&tmp, ckpt_path(&self.dir, seq))?;
        if self.sync {
            sync_dir(&self.dir)?;
        }
        Ok(())
    }

    fn open_segment(&mut self, seq: u64) -> io::Result<()> {
        let mut f = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(wal_path(&self.dir, seq))?;
        f.write_all(&encode_wal_header(self.fingerprint))?;
        if self.sync {
            f.sync_all()?;
            sync_dir(&self.dir)?;
        }
        self.wal = f;
        self.seq = seq;
        Ok(())
    }

    /// Append one epoch record to the active segment and (when `sync`)
    /// fsync it — the "append → fsync" half of the ordered discipline; the
    /// caller applies the epoch's effects only after this returns.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn append(&mut self, record: &WalRecord) -> io::Result<()> {
        self.wal.write_all(&encode_record(record))?;
        if self.sync {
            self.wal.sync_data()?;
        }
        Ok(())
    }

    /// Force the store to stable storage regardless of the `sync` option:
    /// fsync the active WAL segment, the current checkpoint file, and the
    /// directory. The graceful-shutdown durability point for stores that
    /// log with `sync: false` (the engine's measurement-harness default).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn sync_all(&mut self) -> io::Result<()> {
        self.wal.sync_data()?;
        let ckpt = ckpt_path(&self.dir, self.seq);
        if ckpt.exists() {
            File::open(&ckpt)?.sync_all()?;
        }
        sync_dir(&self.dir)
    }

    /// Rotate: write checkpoint `seq+1` (temp + rename + dir fsync), open
    /// WAL segment `seq+1`, and prune pairs `≤ seq−1` (keeping exactly one
    /// older pair as the fallback for a torn checkpoint).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn rotate(&mut self, ckpt: &Checkpoint) -> io::Result<()> {
        let next = self.seq + 1;
        self.write_checkpoint_file(next, ckpt)?;
        self.open_segment(next)?;
        if next >= 2 {
            for old in 0..=(next - 2) {
                let c = ckpt_path(&self.dir, old);
                let w = wal_path(&self.dir, old);
                if c.exists() {
                    fs::remove_file(c)?;
                }
                if w.exists() {
                    fs::remove_file(w)?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dewrite_core::Snapshot;

    fn tmpdir(tag: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("dewrite-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn ckpt(writes: u64) -> Checkpoint {
        Checkpoint {
            writes_covered: writes,
            snapshot: Snapshot::empty(64, 5),
        }
    }

    #[test]
    fn create_rotate_prune() {
        let dir = tmpdir("rotate");
        let mut store = MetaStore::create(&dir, 5, &ckpt(0), false).unwrap();
        assert_eq!(store.seq(), 0);
        store
            .append(&WalRecord {
                base_writes: 0,
                writes_covered: 4,
                ops: vec![],
            })
            .unwrap();
        store.rotate(&ckpt(4)).unwrap();
        store.rotate(&ckpt(8)).unwrap();
        store.rotate(&ckpt(12)).unwrap();
        // Pairs 0 and 1 pruned; 2 and 3 retained.
        assert_eq!(list_seqs(&dir, CKPT_PREFIX, CKPT_EXT).unwrap(), vec![2, 3]);
        assert_eq!(list_seqs(&dir, WAL_PREFIX, WAL_EXT).unwrap(), vec![2, 3]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn create_wipes_previous_state() {
        let dir = tmpdir("wipe");
        let mut store = MetaStore::create(&dir, 5, &ckpt(0), false).unwrap();
        store.rotate(&ckpt(4)).unwrap();
        drop(store);
        let _fresh = MetaStore::create(&dir, 5, &ckpt(0), false).unwrap();
        assert_eq!(list_seqs(&dir, CKPT_PREFIX, CKPT_EXT).unwrap(), vec![0]);
        assert_eq!(list_seqs(&dir, WAL_PREFIX, WAL_EXT).unwrap(), vec![0]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn seq_parsing_rejects_noise() {
        assert_eq!(
            parse_seq("ckpt-00000007.dwck", CKPT_PREFIX, CKPT_EXT),
            Some(7)
        );
        assert_eq!(parse_seq("ckpt-abc.dwck", CKPT_PREFIX, CKPT_EXT), None);
        assert_eq!(parse_seq("ckpt-.dwck", CKPT_PREFIX, CKPT_EXT), None);
        assert_eq!(parse_seq("wal-00000001.log", CKPT_PREFIX, CKPT_EXT), None);
    }
}
