//! Metadata-mutation journal: the vocabulary of durable state changes a
//! write applies, expressed at the same level as [`Snapshot`](crate::Snapshot).
//!
//! The dedup hash table's reference counts are deliberately *not* part of
//! this vocabulary: they are derived state, recomputed from the mappings by
//! [`Snapshot::rebuild`](crate::Snapshot::rebuild) exactly as a recovery
//! scan of the inverted table would. Logging only the primary state keeps
//! each write's log footprint at a handful of fixed-size ops and makes
//! replay trivially idempotent (every op is an absolute assignment, not a
//! delta).
//!
//! Predictor and cache state are excluded entirely: they are performance
//! hints that any controller rebuilds cold after a restart.
//!
//! Producers: [`DeWrite`](crate::DeWrite) (after
//! [`set_meta_journal`](crate::DeWrite::set_meta_journal)) and the engine's
//! `ShardController`. Consumer: the `dewrite-persist` crate's write-ahead
//! log, which encodes these ops into checksummed epoch records.

/// One durable metadata mutation, in snapshot-level terms.
///
/// Addresses are global line indices (the same namespace as
/// [`Snapshot`](crate::Snapshot) uses), so an op stream replays onto a
/// snapshot image without translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetaOp {
    /// Address-mapping update: `init` now resolves to `real` (identity
    /// mappings included — they also mark the address as written).
    MapSet {
        /// Initial (workload-visible) line address.
        init: u64,
        /// Physical line now holding `init`'s content.
        real: u64,
    },
    /// Inverted-table update: `real` is resident with content `digest`
    /// (insert-or-overwrite; an in-place overwrite replaces the digest).
    ResidentSet {
        /// Physical line address.
        real: u64,
        /// Content fingerprint: the folded 32-bit light hash zero-extended, or
        /// the 64-bit strong tag, per the digest mode.
        digest: u64,
    },
    /// Inverted-table clear: `real` lost its last reference and was freed.
    ResidentDel {
        /// Physical line address.
        real: u64,
    },
    /// Encryption-counter update for a physical line. Counters are never
    /// deleted (pad uniqueness must survive slot reuse).
    CounterSet {
        /// Physical line address.
        line: u64,
        /// New counter value.
        value: u32,
    },
}
