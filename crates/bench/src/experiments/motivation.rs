//! Motivation experiments: Fig. 2 (duplication), Fig. 4 (predictability),
//! Fig. 6 (CRC collisions), Fig. 7 (reference-count distribution).

use dewrite_core::HistoryPredictor;
use dewrite_trace::{all_apps, DupOracle};

use crate::experiments::{mean, Ctx};
use crate::runner::{par_map_apps, run_scheme, SchemeKind, Workload};
use crate::table::{bar, pct, Table};

/// Fig. 2: percentage of duplicate lines (and zero lines) per application.
///
/// Paper: 18.6%–98.4% across apps, average 58%; zero lines average 16%.
pub fn fig2(ctx: &mut Ctx) {
    let apps = all_apps();
    let scale = ctx.scale;
    let rows = par_map_apps(&apps, |profile, seed| {
        let w = Workload::generate(profile, scale, seed);
        let mut oracle = DupOracle::new();
        for rec in &w.warmup {
            oracle.observe_warmup(rec);
        }
        for rec in &w.trace {
            oracle.observe(rec);
        }
        let s = oracle.stats();
        (profile.name.to_string(), s.dup_ratio(), s.zero_ratio())
    });

    let mut t = Table::new(
        "Fig. 2 — duplicate lines written to NVMM (paper: avg 58%, zero avg 16%)",
        &["app", "duplicate", "zero-lines", ""],
    );
    for (name, dup, zero) in &rows {
        t.row(vec![
            name.clone(),
            pct(*dup),
            pct(*zero),
            bar(*dup, 1.0, 25),
        ]);
    }
    t.row(vec![
        "AVERAGE".into(),
        pct(mean(rows.iter().map(|r| r.1))),
        pct(mean(rows.iter().map(|r| r.2))),
        String::new(),
    ]);
    ctx.emit(&t, "fig2");
}

/// Fig. 4: duplication-state predictability — accuracy of 1-bit vs 3-bit
/// history windows (paper: 92.1% → 93.6%).
pub fn fig4(ctx: &mut Ctx) {
    let apps = all_apps();
    let scale = ctx.scale;
    let rows = par_map_apps(&apps, |profile, seed| {
        let w = Workload::generate(profile, scale, seed);
        let mut oracle = DupOracle::recording();
        for rec in &w.warmup {
            oracle.observe_warmup(rec);
        }
        for rec in &w.trace {
            oracle.observe(rec);
        }
        let outcomes = oracle.outcomes().to_vec();
        let acc = |bits: usize| {
            let mut p = HistoryPredictor::new(bits);
            for &o in &outcomes {
                p.record(o);
            }
            p.accuracy()
        };
        (
            profile.name.to_string(),
            oracle.stats().state_persistence(),
            acc(1),
            acc(3),
        )
    });

    let mut t = Table::new(
        "Fig. 4 — predictor accuracy (paper: 1-bit 92.1%, 3-bit 93.6%)",
        &["app", "same-as-prev", "1-bit window", "3-bit window"],
    );
    for (name, persist, a1, a3) in &rows {
        t.row(vec![name.clone(), pct(*persist), pct(*a1), pct(*a3)]);
    }
    t.row(vec![
        "AVERAGE".into(),
        pct(mean(rows.iter().map(|r| r.1))),
        pct(mean(rows.iter().map(|r| r.2))),
        pct(mean(rows.iter().map(|r| r.3))),
    ]);
    ctx.emit(&t, "fig4");
}

/// Fig. 6: CRC-32 collision probability during deduplication
/// (paper: < 0.01% on average).
pub fn fig6(ctx: &mut Ctx) {
    let apps = all_apps();
    let scale = ctx.scale;
    let rows = par_map_apps(&apps, |profile, seed| {
        let w = Workload::generate(profile, scale, seed);
        let report = run_scheme(SchemeKind::DeWrite, &w);
        let dm = report.dewrite.expect("dewrite metrics");
        let digest_matches = dm.dup_eliminated + dm.false_matches;
        let rate = if digest_matches == 0 {
            0.0
        } else {
            dm.false_matches as f64 / digest_matches as f64
        };
        (
            profile.name.to_string(),
            dm.false_matches,
            digest_matches,
            rate,
        )
    });

    let mut t = Table::new(
        "Fig. 6 — CRC-32 collision rate among digest matches (paper: <0.01%)",
        &["app", "collisions", "digest-matches", "rate"],
    );
    for (name, coll, matches, rate) in &rows {
        t.row(vec![
            name.clone(),
            coll.to_string(),
            matches.to_string(),
            format!("{:.4}%", rate * 100.0),
        ]);
    }
    t.row(vec![
        "AVERAGE".into(),
        String::new(),
        String::new(),
        format!("{:.4}%", mean(rows.iter().map(|r| r.3)) * 100.0),
    ]);
    ctx.emit(&t, "fig6");
}

/// Fig. 7: reference-count distribution of resident lines
/// (paper: >99.999% of lines have reference < 255).
pub fn fig7(ctx: &mut Ctx) {
    let apps = all_apps();
    let scale = ctx.scale;
    let rows = par_map_apps(&apps, |profile, seed| {
        let w = Workload::generate(profile, scale, seed);
        let config = w.system_config();
        let mut mem = dewrite_core::DeWrite::new(
            config.clone(),
            dewrite_core::DeWriteConfig::paper(),
            crate::runner::KEY,
        );
        let sim = dewrite_core::Simulator::new(&config);
        sim.run(&mut mem, profile.name, &w.warmup, w.trace.iter().cloned())
            .expect("trace fits");
        let refs: Vec<u8> = mem.index().reference_counts().collect();
        let total = refs.len().max(1) as f64;
        let bucket =
            |lo: u8, hi: u8| refs.iter().filter(|&&r| r >= lo && r <= hi).count() as f64 / total;
        (
            profile.name.to_string(),
            bucket(1, 1),
            bucket(2, 10),
            bucket(11, 254),
            bucket(255, 255),
        )
    });

    let mut t = Table::new(
        "Fig. 7 — reference-count distribution of resident lines (paper: >99.999% < 255)",
        &["app", "ref=1", "ref 2-10", "ref 11-254", "ref=255"],
    );
    for (name, r1, r2, r3, r4) in &rows {
        t.row(vec![name.clone(), pct(*r1), pct(*r2), pct(*r3), pct(*r4)]);
    }
    t.row(vec![
        "AVERAGE".into(),
        pct(mean(rows.iter().map(|r| r.1))),
        pct(mean(rows.iter().map(|r| r.2))),
        pct(mean(rows.iter().map(|r| r.3))),
        pct(mean(rows.iter().map(|r| r.4))),
    ]);
    ctx.emit(&t, "fig7");
}
