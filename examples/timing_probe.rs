//! The deduplication timing side channel, demonstrated.
//!
//! The paper's threat model (§II-A) covers physical attackers and explicitly
//! scopes out dedup side channels (§V: "the side channel attacks are beyond
//! the scope of this paper"). This example shows *why* that caveat matters:
//! a co-located program that shares the DeWrite memory can test whether some
//! exact line content already exists in memory — written by anyone — purely
//! by timing its own writes. An eliminated duplicate completes in tens of
//! nanoseconds; a stored write takes hundreds.
//!
//! This is the line-granularity analogue of the classic page-dedup attacks
//! on virtualized hosts (Suzaki et al.), and the reason deployed systems
//! either partition dedup domains per tenant or add constant-time write
//! acknowledgement.
//!
//! Run with: `cargo run --release --example timing_probe`

use dewrite::core::{DeWrite, DeWriteConfig, SecureMemory, SystemConfig};
use dewrite::nvm::LineAddr;

/// Build a 256 B line holding a guessed 4-digit PIN in a known record
/// format (the kind of low-entropy secret dedup probing recovers).
fn pin_record(pin: u16) -> Vec<u8> {
    let mut line = vec![0u8; 256];
    let text = format!("{{\"user\":\"alice\",\"pin\":\"{pin:04}\"}}");
    line[..text.len()].copy_from_slice(text.as_bytes());
    line
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut mem = DeWrite::new(
        SystemConfig::for_lines(1 << 14),
        DeWriteConfig::paper(),
        b"side channel key",
    );
    let mut t = 0u64;

    // --- Victim: stores a record containing a secret PIN. ---------------
    let secret_pin = 4271u16;
    let w = mem.write(LineAddr::new(100), &pin_record(secret_pin), t)?;
    t += w.total_ns + 1_000;
    println!("victim stored its PIN record (attacker does not see this)\n");

    // --- Attacker: probes guesses from its own address region. ----------
    // Strategy: write the guess, time it, then overwrite with junk to reset
    // the probe line. (A real attack also warms the predictor; here the
    // clean/dup timing gap is wide enough without finesse.)
    let probe_addr = LineAddr::new(9_000);
    let mut junk = vec![0xEEu8; 256];
    let mut hits = Vec::new();

    for guess in 4265..4280u16 {
        let w = mem.write(probe_addr, &pin_record(guess), t)?;
        t += w.total_ns + 500;
        let duplicate_timing = w.eliminated;
        if duplicate_timing {
            hits.push(guess);
        }
        println!(
            "probe pin {guess:04}: write took {:>4} ns -> {}",
            w.total_ns,
            if duplicate_timing {
                "DUPLICATE (content exists in memory!)"
            } else {
                "stored"
            }
        );
        // Reset the probe line with unique junk so the next guess is fresh.
        junk[0..2].copy_from_slice(&guess.to_le_bytes());
        let w = mem.write(probe_addr, &junk, t)?;
        t += w.total_ns + 500;
    }

    println!("\nattacker concludes the PIN is: {hits:?}");
    assert_eq!(
        hits,
        vec![secret_pin],
        "the probe recovers exactly the secret"
    );
    println!(
        "\nMitigations: per-tenant dedup domains, constant-time write\n\
         acknowledgement, or disabling dedup for secret-bearing regions —\n\
         all outside the paper's (and this reproduction's) threat model."
    );
    Ok(())
}
