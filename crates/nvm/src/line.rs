//! Line addressing and line-content helpers.

/// Default cache-line / memory-line size in bytes.
///
/// The paper uses 256 B lines throughout (§III-B1): "We consider the 256B of
/// deduplication granularity to reduce the metadata overheads … the
/// commercial processors, e.g., IBM z systems processors, also use the 256B
/// cache line size."
pub const DEFAULT_LINE_SIZE: usize = 256;

/// The index of a memory line (not a byte address).
///
/// A `LineAddr` is what the paper calls the *initial address number*: the
/// line-granular address the CPU issues. Under deduplication it may map to a
/// different *real* storage location; both sides of that mapping use this
/// type.
///
/// ```
/// use dewrite_nvm::LineAddr;
/// let a = LineAddr::new(42);
/// assert_eq!(a.index(), 42);
/// assert_eq!(a.byte_offset(256), 42 * 256);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(u64);

impl LineAddr {
    /// Wrap a line index.
    pub const fn new(index: u64) -> Self {
        LineAddr(index)
    }

    /// The raw line index.
    pub const fn index(self) -> u64 {
        self.0
    }

    /// The byte offset of this line for a given line size.
    pub const fn byte_offset(self, line_size: usize) -> u64 {
        self.0 * line_size as u64
    }

    /// The next line.
    pub const fn next(self) -> LineAddr {
        LineAddr(self.0 + 1)
    }
}

impl From<u64> for LineAddr {
    fn from(index: u64) -> Self {
        LineAddr(index)
    }
}

impl From<LineAddr> for u64 {
    fn from(addr: LineAddr) -> Self {
        addr.0
    }
}

impl std::fmt::Display for LineAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "L{:#x}", self.0)
    }
}

/// Count the differing bits between two equal-length buffers.
///
/// This is the quantity PCM cell-level write-reduction schemes (DCW) care
/// about: only differing bits must be programmed.
///
/// # Panics
///
/// Panics if the buffers have different lengths.
///
/// ```
/// use dewrite_nvm::bit_flips;
/// assert_eq!(bit_flips(&[0x0F], &[0xF0]), 8);
/// assert_eq!(bit_flips(&[0xFF], &[0xFF]), 0);
/// ```
pub fn bit_flips(old: &[u8], new: &[u8]) -> u64 {
    assert_eq!(old.len(), new.len(), "bit_flips requires equal lengths");
    old.iter()
        .zip(new.iter())
        .map(|(a, b)| u64::from((a ^ b).count_ones()))
        .sum()
}

/// Whether every byte of `data` is zero (a "shredded"/zero line, the case
/// Silent Shredder optimizes).
///
/// ```
/// use dewrite_nvm::is_zero_line;
/// assert!(is_zero_line(&[0u8; 256]));
/// assert!(!is_zero_line(&[1u8]));
/// ```
pub fn is_zero_line(data: &[u8]) -> bool {
    data.iter().all(|&b| b == 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn addr_conversions() {
        let a: LineAddr = 7u64.into();
        assert_eq!(u64::from(a), 7);
        assert_eq!(a.next().index(), 8);
        assert_eq!(a.to_string(), "L0x7");
    }

    #[test]
    fn byte_offset_scales_with_line_size() {
        assert_eq!(LineAddr::new(3).byte_offset(64), 192);
        assert_eq!(LineAddr::new(3).byte_offset(256), 768);
    }

    #[test]
    fn bit_flips_counts_symmetric_difference() {
        assert_eq!(bit_flips(&[0b1010_1010], &[0b0101_0101]), 8);
        assert_eq!(bit_flips(&[0xFF, 0x00], &[0x00, 0xFF]), 16);
        assert_eq!(bit_flips(&[], &[]), 0);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn bit_flips_rejects_ragged() {
        let _ = bit_flips(&[0], &[0, 0]);
    }

    proptest! {
        #[test]
        fn bit_flips_is_symmetric(a in proptest::collection::vec(any::<u8>(), 0..64),
                                  b_seed in any::<u64>()) {
            let b: Vec<u8> = a.iter().enumerate()
                .map(|(i, &x)| x ^ (b_seed.rotate_left(i as u32) as u8))
                .collect();
            prop_assert_eq!(bit_flips(&a, &b), bit_flips(&b, &a));
        }

        #[test]
        fn bit_flips_zero_iff_equal(a in proptest::collection::vec(any::<u8>(), 1..64)) {
            prop_assert_eq!(bit_flips(&a, &a), 0);
            let mut b = a.clone();
            b[0] ^= 1;
            prop_assert_eq!(bit_flips(&a, &b), 1);
        }

        #[test]
        fn zero_line_detection(len in 0usize..512) {
            prop_assert!(is_zero_line(&vec![0u8; len]));
        }
    }
}
