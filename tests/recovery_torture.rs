//! Kill-at-random-point recovery torture: run a durable workload, crash it,
//! then sweep faults over the on-disk metadata store — truncations at and
//! around every record boundary, single-bit flips in record headers,
//! payloads, and file headers, and corrupted checkpoints — and prove that
//! every survivable fault recovers *exactly* to an epoch boundary whose
//! lines all verify against a deterministic shadow replay, while every
//! unsurvivable fault is rejected as corrupt (never silently mis-recovered).
//!
//! Writes a machine-readable sweep summary to `$TORTURE_OUT` (default
//! `target/torture_summary.json`) for the CI artifact.

use std::collections::{BTreeSet, HashMap};
use std::fs;
use std::path::{Path, PathBuf};

use dewrite::core::{DeWrite, DeWriteConfig, Json, SecureMemory, SystemConfig};
use dewrite::nvm::LineAddr;
use dewrite::persist::{
    apply_fault, decode_wal, encode_record, DurableDeWrite, DurableOptions, Fault, PersistError,
    RecoverDeWrite, RecoveryStats, WAL_HEADER_BYTES,
};
use dewrite::trace::{app_by_name, shard_of_line, TraceOp};
use dewrite_engine::{EngineConfig, ShardController};
use dewrite_net::proto::{Hello, NET_VERSION};
use dewrite_net::{Control, NetServer, ServeOptions};

const KEY: &[u8; 16] = b"torture test key";
const LINES: u64 = 512;
const WRITES: u64 = 600;
const EPOCH: u32 = 16;

fn config() -> SystemConfig {
    SystemConfig::for_lines(LINES)
}

/// Deterministic line content for write `i`: a 96-line address space and a
/// 7-tag content pool, so the workload remaps, deduplicates, and frees.
fn content(i: u64) -> (LineAddr, Vec<u8>) {
    let addr = LineAddr::new((i * 11 + i / 7) % 96);
    let tag = (i % 7) as u8;
    let data: Vec<u8> = (0..256).map(|j| tag.wrapping_add((j / 16) as u8)).collect();
    (addr, data)
}

/// Run the durable workload and crash it (drop without shutdown), leaving
/// the open epoch unflushed. Returns the store directory.
fn build_store(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dewrite-torture-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    let opts = DurableOptions {
        epoch_writes: EPOCH,
        checkpoint_epochs: 8,
        sync: false,
    };
    let mut mem =
        DurableDeWrite::create(&dir, config(), DeWriteConfig::paper(), KEY, opts).expect("create");
    for i in 0..WRITES {
        let (addr, data) = content(i);
        mem.write(addr, &data, i * 600).expect("write");
    }
    drop(mem); // crash: the open epoch is lost
    dir
}

/// Store files with the given prefix/extension, ascending by sequence.
fn seq_files(dir: &Path, prefix: &str, ext: &str) -> Vec<(u64, String)> {
    let mut found = Vec::new();
    for entry in fs::read_dir(dir).expect("read store dir") {
        let name = entry.expect("dir entry").file_name();
        let name = name.to_string_lossy().into_owned();
        if let Some(stem) = name.strip_prefix(prefix).and_then(|s| s.strip_suffix(ext)) {
            if let Ok(seq) = stem.parse::<u64>() {
                found.push((seq, name));
            }
        }
    }
    found.sort_unstable();
    found
}

/// Copy every store file into a fresh scratch directory.
fn clone_store(src: &Path, dst: &Path) {
    let _ = fs::remove_dir_all(dst);
    fs::create_dir_all(dst).expect("scratch dir");
    for entry in fs::read_dir(src).expect("read store dir") {
        let entry = entry.expect("dir entry");
        fs::copy(entry.path(), dst.join(entry.file_name())).expect("copy store file");
    }
}

/// What a fault case must do.
enum Expect {
    /// Recovery succeeds, covering exactly `writes` data writes, with the
    /// given torn-tail verdict and (optionally) skipped-checkpoint count.
    Recover {
        writes: u64,
        torn: bool,
        skipped: Option<u64>,
    },
    /// Recovery must reject the store as corrupt.
    Reject,
}

struct Case {
    label: String,
    /// (file name, fault) pairs applied to the cloned store.
    faults: Vec<(String, Fault)>,
    expect: Expect,
}

/// Rebuild the reference controller state at write boundary `w` by
/// deterministic replay, returning it plus the shadow map of its lines.
fn reference_at(w: u64) -> (DeWrite, HashMap<u64, Vec<u8>>) {
    let mut mem = DeWrite::new(config(), DeWriteConfig::paper(), KEY);
    let mut shadow = HashMap::new();
    for i in 0..w {
        let (addr, data) = content(i);
        mem.write(addr, &data, i * 600).expect("write");
        shadow.insert(addr.index(), data);
    }
    (mem, shadow)
}

/// Run one fault case against a clone of `store` and panic on any deviation
/// from its expectation. Returns the stats (successful cases) for the
/// summary.
fn run_case(store: &Path, scratch: &Path, case: &Case) -> Option<RecoveryStats> {
    clone_store(store, scratch);
    for (file, fault) in &case.faults {
        let path = scratch.join(file);
        let mut bytes = fs::read(&path).expect("read faulted file");
        apply_fault(&mut bytes, *fault);
        fs::write(&path, &bytes).expect("write faulted file");
    }
    match &case.expect {
        Expect::Reject => {
            let device = dewrite::nvm::NvmDevice::new(config().nvm.clone()).expect("device");
            let err = DeWrite::recover(scratch, config(), DeWriteConfig::paper(), KEY, device)
                .err()
                .unwrap_or_else(|| panic!("{}: must be rejected, but recovered", case.label));
            assert!(
                matches!(err, PersistError::Corrupt(_)),
                "{}: expected Corrupt, got {err}",
                case.label
            );
            None
        }
        Expect::Recover {
            writes,
            torn,
            skipped,
        } => {
            // The epoch is the atomic unit of loss for data and metadata
            // alike: rebuild the device as it stood at the boundary.
            let (reference, shadow) = reference_at(*writes);
            let (ref_snapshot, device) = reference.power_off();
            let (mut recovered, stats) =
                DeWrite::recover(scratch, config(), DeWriteConfig::paper(), KEY, device)
                    .unwrap_or_else(|e| panic!("{}: recovery failed: {e}", case.label));
            assert_eq!(
                stats.writes_covered, *writes,
                "{}: recovered to the wrong boundary",
                case.label
            );
            assert_eq!(stats.torn_tail, *torn, "{}: torn-tail verdict", case.label);
            if let Some(skip) = skipped {
                assert_eq!(
                    stats.checkpoints_skipped, *skip,
                    "{}: checkpoints skipped",
                    case.label
                );
            }
            assert_eq!(
                recovered.snapshot(),
                ref_snapshot,
                "{}: recovered metadata differs from the replayed reference",
                case.label
            );
            let mut t = 1_000_000_000;
            for (&addr, expect) in &shadow {
                let got = recovered.read(LineAddr::new(addr), t).expect("read").data;
                assert_eq!(&got, expect, "{}: line {addr} corrupted", case.label);
                t += 500;
            }
            recovered
                .index()
                .check_invariants()
                .unwrap_or_else(|e| panic!("{}: invariants: {e}", case.label));
            Some(stats)
        }
    }
}

#[test]
fn torture_sweep_over_tear_points_and_bit_flips() {
    let store = build_store("sweep");
    let fp = DeWriteConfig::paper().fingerprint();

    let ckpts = seq_files(&store, "ckpt-", ".dwck");
    let wals = seq_files(&store, "wal-", ".log");
    assert!(ckpts.len() >= 2, "rotation must retain a fallback pair");
    assert_eq!(ckpts.len(), wals.len());
    let (_, newest_wal) = wals.last().expect("a wal segment").clone();
    let (_, older_wal) = wals[wals.len() - 2].clone();
    let (_, newest_ckpt) = ckpts.last().expect("a checkpoint").clone();
    let (_, older_ckpt) = ckpts[ckpts.len() - 2].clone();

    // Decode the pristine newest segment once to learn its record layout:
    // `ends[k]` is the byte offset right after record k, and `covered[k]`
    // the cumulative write count it reaches. The encoding is deterministic,
    // so re-encoding each record reproduces its on-disk extent.
    let wal_bytes = fs::read(store.join(&newest_wal)).expect("read newest wal");
    let decoded = decode_wal(&wal_bytes, fp).expect("pristine decode");
    let base_writes = decoded
        .records
        .first()
        .map(|r| r.base_writes)
        .expect("crashed run leaves records in the newest segment");
    let mut ends = Vec::new();
    let mut covered = Vec::new();
    let mut off = WAL_HEADER_BYTES;
    for rec in &decoded.records {
        off += encode_record(rec).len();
        ends.push(off);
        covered.push(rec.writes_covered);
    }
    assert_eq!(off, wal_bytes.len(), "crashed mid-epoch: no partial record");
    let flushed = *covered.last().expect("records");
    assert_eq!(flushed, WRITES - WRITES % u64::from(EPOCH));

    // Largest boundary a truncation at `cut` still covers.
    let covered_at = |cut: usize| -> u64 {
        ends.iter()
            .zip(&covered)
            .filter(|&(&e, _)| e <= cut)
            .map(|(_, &w)| w)
            .max()
            .unwrap_or(base_writes)
    };
    let is_boundary = |cut: usize| cut == WAL_HEADER_BYTES || ends.contains(&cut);

    let mut cases: Vec<Case> = Vec::new();
    cases.push(Case {
        label: "pristine (crash only)".into(),
        faults: vec![],
        expect: Expect::Recover {
            writes: flushed,
            torn: false,
            skipped: Some(0),
        },
    });

    // Truncations: around every record boundary, through the file header,
    // and on a coarse stride across the whole segment.
    let mut cuts: BTreeSet<usize> = [0usize, 5, WAL_HEADER_BYTES - 1, WAL_HEADER_BYTES]
        .into_iter()
        .collect();
    for &e in &ends {
        cuts.extend([e - 1, e, (e + 1).min(wal_bytes.len())]);
    }
    cuts.extend((WAL_HEADER_BYTES..wal_bytes.len()).step_by(97));
    for cut in cuts {
        cases.push(Case {
            label: format!("truncate newest wal at {cut}"),
            faults: vec![(newest_wal.clone(), Fault::Truncate { at: cut as u64 })],
            expect: Expect::Recover {
                writes: covered_at(cut),
                torn: !(cut == wal_bytes.len() || is_boundary(cut)),
                skipped: Some(0),
            },
        });
    }

    // Bit flips inside each record: length field, checksum field, payload.
    // The flipped record and everything after it must be discarded as torn.
    let mut start = WAL_HEADER_BYTES;
    for (k, &end) in ends.iter().enumerate() {
        let before = if k == 0 { base_writes } else { covered[k - 1] };
        for (name, at, bit) in [
            ("len", start, 3u8),
            ("crc", start + 4, 1),
            ("payload", start + 8 + (end - start - 8) / 2, 6),
        ] {
            cases.push(Case {
                label: format!("flip {name} bit of record {k}"),
                faults: vec![(newest_wal.clone(), Fault::BitFlip { at: at as u64, bit })],
                expect: Expect::Recover {
                    writes: before,
                    torn: true,
                    skipped: Some(0),
                },
            });
        }
        start = end;
    }

    // File-header damage: a garbled magic or fingerprint region makes the
    // whole segment torn-empty (recover from the checkpoint alone); a
    // *valid* header announcing an unknown version is a hard reject.
    for (label, at) in [("magic", 0u64), ("header crc", 6), ("fingerprint", 12)] {
        cases.push(Case {
            label: format!("flip wal {label} byte"),
            faults: vec![(newest_wal.clone(), Fault::BitFlip { at, bit: 0 })],
            expect: Expect::Recover {
                writes: base_writes,
                torn: true,
                skipped: Some(0),
            },
        });
    }
    cases.push(Case {
        label: "flip wal version byte".into(),
        faults: vec![(newest_wal.clone(), Fault::BitFlip { at: 4, bit: 0 })],
        expect: Expect::Reject,
    });

    // Torn newest checkpoint: recovery falls back to the retained older
    // pair and replays both segments back to the same boundary.
    cases.push(Case {
        label: "corrupt newest checkpoint".into(),
        faults: vec![(newest_ckpt.clone(), Fault::BitFlip { at: 40, bit: 2 })],
        expect: Expect::Recover {
            writes: flushed,
            torn: false,
            skipped: Some(1),
        },
    });
    // Every checkpoint corrupt: nothing to anchor on.
    cases.push(Case {
        label: "corrupt every checkpoint".into(),
        faults: vec![
            (newest_ckpt.clone(), Fault::BitFlip { at: 40, bit: 2 }),
            (older_ckpt.clone(), Fault::BitFlip { at: 40, bit: 2 }),
        ],
        expect: Expect::Reject,
    });
    // Mid-chain tear: the older segment is cut mid-record while the newest
    // checkpoint is also gone, so the newest segment's records no longer
    // chain onto the recovered write count — a gap, not a silent skip.
    let older_len = fs::metadata(store.join(&older_wal))
        .expect("older wal")
        .len();
    cases.push(Case {
        label: "gap: torn older wal behind a dead checkpoint".into(),
        faults: vec![
            (newest_ckpt.clone(), Fault::BitFlip { at: 40, bit: 2 }),
            (older_wal.clone(), Fault::Truncate { at: older_len - 10 }),
        ],
        expect: Expect::Reject,
    });

    // Sweep.
    let scratch =
        std::env::temp_dir().join(format!("dewrite-torture-scratch-{}", std::process::id()));
    let mut recovered = 0u64;
    let mut rejected = 0u64;
    let mut torn_seen = 0u64;
    let mut boundaries: BTreeSet<u64> = BTreeSet::new();
    let mut case_objs: Vec<Json> = Vec::new();
    for case in &cases {
        let stats = run_case(&store, &scratch, case);
        let mut fields = vec![("label".to_string(), Json::Str(case.label.clone()))];
        match stats {
            Some(s) => {
                recovered += 1;
                torn_seen += u64::from(s.torn_tail);
                boundaries.insert(s.writes_covered);
                fields.push(("outcome".into(), Json::Str("recovered".into())));
                fields.push(("stats".into(), s.to_json()));
            }
            None => {
                rejected += 1;
                fields.push(("outcome".into(), Json::Str("rejected".into())));
            }
        }
        case_objs.push(Json::Obj(fields));
    }
    let _ = fs::remove_dir_all(&scratch);
    let _ = fs::remove_dir_all(&store);

    assert!(cases.len() >= 40, "sweep too small: {} cases", cases.len());
    assert!(torn_seen > 0 && rejected >= 3 && boundaries.len() >= 3);
    // Every recovered boundary is a flushed epoch edge (multiple of the
    // epoch size, or the checkpoint base).
    for &b in &boundaries {
        assert!(
            b % u64::from(EPOCH) == 0,
            "recovered to a non-epoch boundary {b}"
        );
    }

    let summary = Json::Obj(vec![
        ("workload_writes".into(), Json::Num(WRITES as f64)),
        ("epoch_writes".into(), Json::Num(f64::from(EPOCH))),
        ("flushed_writes".into(), Json::Num(flushed as f64)),
        ("cases".into(), Json::Num(cases.len() as f64)),
        ("recovered".into(), Json::Num(recovered as f64)),
        ("rejected".into(), Json::Num(rejected as f64)),
        ("torn_tails_detected".into(), Json::Num(torn_seen as f64)),
        (
            "distinct_boundaries".into(),
            Json::Arr(boundaries.iter().map(|&b| Json::Num(b as f64)).collect()),
        ),
        ("case_results".into(), Json::Arr(case_objs)),
    ]);
    let out = std::env::var("TORTURE_OUT").unwrap_or_else(|_| {
        let _ = fs::create_dir_all("target");
        "target/torture_summary.json".into()
    });
    fs::write(&out, format!("{summary}\n")).expect("write torture summary");
    println!(
        "torture: {} cases, {recovered} recovered, {rejected} rejected -> {out}",
        cases.len()
    );
}

/// Network fault injection: kill a persisting `dewrite-serve` engine
/// mid-stream (hard abort — the process analogue of a power cut between
/// epoch flushes) while a socket client is replaying a trace, then
/// recover every shard's store and prove the epoch-boundary guarantee
/// holds end to end: no torn tail, a whole number of epochs covered, and
/// recovered metadata identical to a deterministic shadow replay of that
/// shard's applied prefix.
#[test]
fn socket_kill_mid_stream_recovers_every_shard_to_an_epoch_boundary() {
    const SHARDS: usize = 2;
    const NET_EPOCH: u32 = 8;

    // A trace big enough that the abort lands mid-replay.
    let mut profile = app_by_name("mcf").expect("mcf profile");
    profile.working_set_lines = 512;
    profile.content_pool_size = 64;
    let mut gen = dewrite::trace::TraceGenerator::new(profile, 256, 29);
    let lines = gen.required_lines();
    let mut records = gen.warmup_records();
    records.extend(gen.by_ref().take(20_000));
    let writes = records.iter().filter(|r| r.op.is_write()).count() as u64;

    let root = std::env::temp_dir().join(format!("dewrite-net-torture-{}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    let server = NetServer::bind(ServeOptions {
        addr: "127.0.0.1:0".into(),
        shards: SHARDS,
        threads: 2,
        persist_dir: Some(root.clone()),
        persist_epoch: NET_EPOCH,
        ..ServeOptions::default()
    })
    .expect("bind");
    let addr = server.local_addr().to_string();
    let handle = server.handle();

    let hello = Hello {
        version: NET_VERSION,
        line_size: 256,
        lines,
        expected_writes: writes,
        cache_policy: 0,
        digest_mode: 0,
        app: "mcf".into(),
    };
    let (_control, info) = Control::connect(&addr, &hello).expect("control connect");
    let config = EngineConfig::for_workload(SHARDS, 256, lines, writes);
    assert_eq!(info.slots_per_shard, config.slots_per_shard);

    // Race the replay against the kill switch. The client is expected to
    // die with a socket error when the server hard-stops under it.
    let driver = {
        let addr = addr.clone();
        let hello = hello.clone();
        let records = records.clone();
        std::thread::spawn(move || {
            dewrite_net::drive(
                &dewrite_net::DriveOptions {
                    addr,
                    connections: 8,
                    window: 16,
                    threads: 2,
                    pacing: dewrite_engine::Pacing::Closed,
                },
                &hello,
                &records,
            )
        })
    };
    std::thread::sleep(std::time::Duration::from_millis(40));
    handle.abort();
    let outcome = server.join();
    assert!(outcome.aborted, "hard abort must be reported");
    assert!(outcome.run.is_none(), "an aborted engine yields no run");
    let _ = driver.join().expect("driver thread");

    // Recover each shard's store. The abort discarded only the open
    // epoch: what is on disk is flushed epochs, so there is never a torn
    // tail and the covered count is a whole number of epochs.
    let max_lines = lines + config.slots_per_shard * 2 + 16;
    let mut total_covered = 0u64;
    for id in 0..SHARDS {
        let shard_dir = root.join(format!("gen-0000/shard-{id:02}"));
        let fp = ShardController::persist_fingerprint(
            id,
            SHARDS,
            config.slots_per_shard,
            256,
            dewrite_engine::DigestMode::Crc32Verify,
        );
        let (snap, stats) = dewrite::persist::recover_state(&shard_dir, fp, max_lines)
            .unwrap_or_else(|e| panic!("shard {id} store must recover: {e}"));
        assert!(!stats.torn_tail, "shard {id}: abort never tears the WAL");
        assert_eq!(
            stats.writes_covered % u64::from(NET_EPOCH),
            0,
            "shard {id}: covered {} writes — not an epoch boundary",
            stats.writes_covered
        );
        total_covered += stats.writes_covered;

        // Shadow replay: the shard's trace subsequence is deterministic
        // (that is the whole point of the in-band sequence numbers), so
        // feeding its first `writes_covered` writes into a fresh
        // controller must land exactly on the recovered state.
        let mut reference =
            ShardController::new(id, SHARDS, config.slots_per_shard, 256, &config.key);
        let mut fed = 0u64;
        for rec in &records {
            if fed == stats.writes_covered {
                break;
            }
            if shard_of_line(rec.op.addr(), SHARDS) != id {
                continue;
            }
            if let TraceOp::Write { addr, data } = &rec.op {
                reference.write(*addr, data, rec.gap_instructions);
                fed += 1;
            }
        }
        assert_eq!(
            fed, stats.writes_covered,
            "shard {id}: trace ran out before the covered prefix"
        );
        assert_eq!(
            snap,
            reference.snapshot(),
            "shard {id}: recovered metadata differs from the shadow replay"
        );
    }
    println!(
        "net torture: abort covered {total_covered} writes across {SHARDS} shards \
         (epoch {NET_EPOCH})"
    );
    let _ = fs::remove_dir_all(&root);
}
