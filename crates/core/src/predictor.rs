//! The duplication-state history predictor (§III-A).
//!
//! DeWrite keeps one small global history window of the duplication
//! outcomes of the most recent writes to main memory. The next write is
//! predicted duplicate iff the majority of recorded outcomes were
//! duplicates. The paper finds 1 bit of history already achieves ≈92%
//! accuracy (duplication states are temporally clustered, Fig. 4), 3 bits
//! reach ≈93.6%, and more bits add nothing — so the deployed window is
//! 3 bits.
//!
//! The prediction steers two optimizations:
//! * **parallelism** — predicted-non-duplicate writes encrypt in parallel
//!   with dedup detection; predicted-duplicate writes skip encryption until
//!   detection resolves;
//! * **PNA** — on a hash-table cache miss, the in-NVM hash table is queried
//!   only if the prediction says duplicate.

/// A majority-vote predictor over the last `bits` duplication outcomes.
///
/// ```
/// use dewrite_core::HistoryPredictor;
///
/// let mut p = HistoryPredictor::new(3);
/// p.record(true);
/// p.record(true);
/// p.record(false);
/// assert!(p.predict_duplicate()); // 2 of 3 recent writes were duplicates
/// ```
#[derive(Debug, Clone)]
pub struct HistoryPredictor {
    window: Vec<bool>,
    cursor: usize,
    filled: usize,
    predictions: u64,
    correct: u64,
}

impl HistoryPredictor {
    /// Create a predictor with a `bits`-entry window.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero.
    pub fn new(bits: usize) -> Self {
        assert!(bits > 0, "history window needs at least one bit");
        HistoryPredictor {
            window: vec![false; bits],
            cursor: 0,
            filled: 0,
            predictions: 0,
            correct: 0,
        }
    }

    /// Window width in bits.
    pub fn bits(&self) -> usize {
        self.window.len()
    }

    /// Predict whether the next write will be a duplicate (majority vote;
    /// ties and an empty window predict non-duplicate, the safe default —
    /// a wrong non-duplicate prediction only costs wasted encryption
    /// energy, never a lost write reduction).
    pub fn predict_duplicate(&self) -> bool {
        if self.filled == 0 {
            return false;
        }
        let dups = self.window[..self.filled].iter().filter(|&&d| d).count();
        2 * dups > self.filled
    }

    /// Record the actual outcome of a write, updating accuracy accounting
    /// against the prediction that [`predict_duplicate`](Self::predict_duplicate)
    /// would have returned just before this call.
    pub fn record(&mut self, was_duplicate: bool) {
        let predicted = self.predict_duplicate();
        self.predictions += 1;
        if predicted == was_duplicate {
            self.correct += 1;
        }
        self.window[self.cursor] = was_duplicate;
        self.cursor = (self.cursor + 1) % self.window.len();
        self.filled = (self.filled + 1).min(self.window.len());
    }

    /// Number of predictions scored.
    pub fn predictions(&self) -> u64 {
        self.predictions
    }

    /// Fraction of predictions that matched the outcome.
    pub fn accuracy(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.correct as f64 / self.predictions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_window_predicts_non_duplicate() {
        let p = HistoryPredictor::new(3);
        assert!(!p.predict_duplicate());
    }

    #[test]
    fn majority_vote_of_three() {
        let mut p = HistoryPredictor::new(3);
        p.record(true);
        p.record(false);
        p.record(true);
        assert!(p.predict_duplicate());
        p.record(false); // window now T,F,F (overwrote oldest T)
        assert!(!p.predict_duplicate());
    }

    #[test]
    fn one_bit_window_follows_last_outcome() {
        let mut p = HistoryPredictor::new(1);
        p.record(true);
        assert!(p.predict_duplicate());
        p.record(false);
        assert!(!p.predict_duplicate());
    }

    #[test]
    fn tie_predicts_non_duplicate() {
        let mut p = HistoryPredictor::new(2);
        p.record(true);
        p.record(false);
        assert!(!p.predict_duplicate());
    }

    #[test]
    fn accuracy_on_constant_stream_approaches_one() {
        let mut p = HistoryPredictor::new(3);
        for _ in 0..1_000 {
            p.record(true);
        }
        assert!(p.accuracy() > 0.99);
        assert_eq!(p.predictions(), 1_000);
    }

    #[test]
    fn accuracy_on_alternating_stream_is_poor() {
        let mut p = HistoryPredictor::new(1);
        for i in 0..1_000 {
            p.record(i % 2 == 0);
        }
        // A 1-bit predictor is always wrong on a strict alternation
        // (after the first prediction).
        assert!(p.accuracy() < 0.01, "{}", p.accuracy());
    }

    #[test]
    fn partial_window_votes_over_observed_only() {
        let mut p = HistoryPredictor::new(3);
        p.record(true); // one observation, all duplicate
        assert!(p.predict_duplicate());
    }

    #[test]
    #[should_panic(expected = "at least one bit")]
    fn zero_bits_rejected() {
        let _ = HistoryPredictor::new(0);
    }

    #[test]
    fn three_bits_beat_one_on_noisy_clustered_stream() {
        // Clustered stream with isolated flips: 1-bit mispredicts twice per
        // isolated flip, 3-bit majority rides through it.
        let stream: Vec<bool> = (0..3_000)
            .map(|i| {
                let phase = (i / 100) % 2 == 0; // long phases
                let noise = i % 37 == 0; // isolated flips
                phase ^ noise
            })
            .collect();

        let mut p1 = HistoryPredictor::new(1);
        let mut p3 = HistoryPredictor::new(3);
        for &s in &stream {
            p1.record(s);
            p3.record(s);
        }
        assert!(
            p3.accuracy() > p1.accuracy(),
            "3-bit {} vs 1-bit {}",
            p3.accuracy(),
            p1.accuracy()
        );
    }
}
