//! Memory encryption for non-volatile main memory (NVMM).
//!
//! Implements the two CPU-side encryption models described in §II-B of the
//! DeWrite paper:
//!
//! * **Counter-mode encryption** ([`CounterModeEngine`]) — the data path.
//!   A one-time pad is derived from the secret key, the line address, and a
//!   per-line counter ([`LineCounter`]); pad generation overlaps the NVM read
//!   so only an XOR sits on the read critical path.
//! * **Direct encryption** ([`DirectEngine`]) — the metadata path. Blocks are
//!   passed through the cipher directly; decryption serializes with the
//!   memory access, which is acceptable because metadata-cache hit rates are
//!   high.
//!
//! The block cipher is AES-128 with three interchangeable backends behind
//! the [`Aes128`] dispatcher: precomputed T-tables (portable fast path),
//! AES-NI (runtime-detected on x86-64), and a from-scratch FIPS-197
//! implementation ([`Aes128Reference`]) retained as the oracle every fast
//! backend is differentially tested against. All backends produce identical
//! ciphertext; backend choice only changes *host* speed, never simulated
//! results. Real ciphertext is produced so that diffusion effects — the
//! reason bit-level write-reduction schemes fail on encrypted NVM — are
//! *measured* rather than assumed by downstream experiments.
//!
//! Simulated hardware costs follow §IV-A and are independent of the host
//! backend: 96 ns AES latency per 256 B line ([`AES_LINE_LATENCY_NS`]) and
//! 5.9 nJ per 128-bit block ([`AES_BLOCK_ENERGY_PJ`]).
//!
//! # Example
//!
//! ```
//! use dewrite_crypto::{CounterModeEngine, LineCounter};
//!
//! let engine = CounterModeEngine::new(b"an example key!!");
//! let mut counter = LineCounter::new();
//! assert!(counter.increment()); // every write bumps the counter
//!
//! let plaintext = vec![42u8; 256];
//! let ciphertext = engine.encrypt_line(&plaintext, 0x8000, counter);
//! assert_eq!(engine.decrypt_line(&ciphertext, 0x8000, counter), plaintext);
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod aes;
#[cfg(target_arch = "x86_64")]
mod aesni;
mod counter;
mod dispatch;
mod engine;
mod ttable;

pub use aes::Aes128Reference;
pub use counter::{LineCounter, COUNTER_BITS, COUNTER_MAX};
pub use dispatch::{portable_only, set_portable_only, Aes128, AesBackend};
pub use engine::{
    aes_line_energy_pj, CounterModeEngine, DirectEngine, AES_BLOCK_ENERGY_PJ, AES_LINE_LATENCY_NS,
    OTP_XOR_LATENCY_NS,
};
