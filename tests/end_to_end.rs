//! Cross-crate integration: every scheme must preserve memory contents
//! exactly under generated workloads, while keeping its internal invariants.

use std::collections::HashMap;

use dewrite::core::{
    CmeBaseline, DeWrite, DeWriteConfig, SecureMemory, SystemConfig, TraditionalDedup, WriteMode,
};
use dewrite::hashes::HashAlgorithm;
use dewrite::nvm::LineAddr;
use dewrite::trace::{app_by_name, TraceGenerator, TraceOp};

const KEY: &[u8; 16] = b"integration key!";

/// Drive a scheme with a generated trace, mirroring writes into a shadow
/// map, then verify every written address reads back exactly.
fn verify_consistency(mem: &mut dyn SecureMemory, app: &str, records: usize) {
    let mut profile = app_by_name(app).expect("known app");
    profile.working_set_lines = 1 << 10;
    profile.content_pool_size = 128;
    let mut gen = TraceGenerator::new(profile, 256, 99);

    let mut shadow: HashMap<u64, Vec<u8>> = HashMap::new();
    let mut t = 0u64;
    for rec in gen.warmup_records() {
        if let TraceOp::Write { addr, data } = rec.op {
            mem.write(addr, &data, t).expect("warmup write");
            shadow.insert(addr.index(), data);
            t += 500;
        }
    }
    for rec in gen.by_ref().take(records) {
        match rec.op {
            TraceOp::Write { addr, data } => {
                mem.write(addr, &data, t).expect("trace write");
                shadow.insert(addr.index(), data);
            }
            TraceOp::Read { addr } => {
                let r = mem.read(addr, t).expect("trace read");
                match shadow.get(&addr.index()) {
                    Some(expect) => assert_eq!(&r.data, expect, "addr {addr}"),
                    None => assert!(r.data.iter().all(|&b| b == 0), "unwritten addr {addr}"),
                }
            }
        }
        t += 500;
    }
    // Final sweep: every written line must read back.
    for (&addr, expect) in &shadow {
        let r = mem.read(LineAddr::new(addr), t).expect("final read");
        assert_eq!(&r.data, expect, "final check at {addr}");
        t += 100;
    }
}

fn config() -> SystemConfig {
    SystemConfig::for_lines((1 << 10) + 128 + 64)
}

#[test]
fn baseline_preserves_contents() {
    let mut mem = CmeBaseline::new(config(), KEY);
    verify_consistency(&mut mem, "mcf", 3_000);
}

#[test]
fn dewrite_preserves_contents_on_duplicate_heavy_app() {
    let mut mem = DeWrite::new(config(), DeWriteConfig::paper(), KEY);
    verify_consistency(&mut mem, "lbm", 3_000);
    assert!(mem.base_metrics().writes_eliminated > 0);
    mem.index().check_invariants().expect("index invariants");
}

#[test]
fn dewrite_preserves_contents_on_low_duplication_app() {
    let mut mem = DeWrite::new(config(), DeWriteConfig::paper(), KEY);
    verify_consistency(&mut mem, "vips", 3_000);
    mem.index().check_invariants().expect("index invariants");
}

#[test]
fn dewrite_direct_and_parallel_modes_preserve_contents() {
    for mode in [WriteMode::Direct, WriteMode::Parallel] {
        let mut cfg = DeWriteConfig::paper();
        cfg.mode = mode;
        cfg.pna = false;
        let mut mem = DeWrite::new(config(), cfg, KEY);
        verify_consistency(&mut mem, "milc", 2_000);
        mem.index().check_invariants().expect("index invariants");
    }
}

#[test]
fn dewrite_with_tiny_caches_still_correct() {
    // Brutal cache pressure: timing degrades, contents must not.
    let mut cfg = DeWriteConfig::paper();
    cfg.meta_cache = dewrite::core::MetaCacheConfig::scaled(1, 16);
    let mut mem = DeWrite::new(config(), cfg, KEY);
    verify_consistency(&mut mem, "cactusADM", 2_000);
    mem.index().check_invariants().expect("index invariants");
}

#[test]
fn traditional_dedup_preserves_contents() {
    let mut mem = TraditionalDedup::new(config(), HashAlgorithm::Sha1, KEY);
    verify_consistency(&mut mem, "dedup", 3_000);
    mem.index().check_invariants().expect("index invariants");
}

#[test]
fn schemes_agree_with_each_other() {
    // The same trace through two schemes must produce identical user-visible
    // memory, whatever the internals do.
    let mut profile = app_by_name("ferret").expect("known app");
    profile.working_set_lines = 1 << 9;
    profile.content_pool_size = 64;
    let gen = TraceGenerator::new(profile, 256, 5);
    let warmup = gen.warmup_records();
    let trace: Vec<_> = gen.take(2_000).collect();

    let cfg = SystemConfig::for_lines((1 << 9) + 64 + 64);
    let mut a = DeWrite::new(cfg.clone(), DeWriteConfig::paper(), KEY);
    let mut b = CmeBaseline::new(cfg, KEY);

    let mut t = 0;
    for rec in warmup.iter().chain(trace.iter()) {
        if let TraceOp::Write { addr, data } = &rec.op {
            a.write(*addr, data, t).expect("a write");
            b.write(*addr, data, t).expect("b write");
            t += 500;
        }
    }
    for rec in &trace {
        let addr = rec.op.addr();
        let ra = a.read(addr, t).expect("a read");
        let rb = b.read(addr, t).expect("b read");
        assert_eq!(ra.data, rb.data, "schemes disagree at {addr}");
        t += 100;
    }
}
