//! The DeWrite secure-NVMM scheme (§III).
//!
//! The write path composes four mechanisms:
//!
//! 1. **light-weight detection** — CRC-32 digest (15 ns), hash-store query,
//!    then a candidate-line read (75 ns) + byte compare (1 cycle) to confirm;
//! 2. **prediction-based parallelism** — the 3-bit history window decides
//!    whether encryption runs in parallel with detection (predicted
//!    non-duplicate) or is deferred until detection resolves (predicted
//!    duplicate);
//! 3. **prediction-based NVM access (PNA)** — on a hash-store *cache* miss,
//!    the in-NVM hash table is queried only when the prediction says
//!    duplicate; otherwise the line is treated as non-duplicate, trading a
//!    small write-reduction loss for far fewer metadata reads;
//! 4. **metadata colocation** — the per-line counter travels with the
//!    address-mapping / inverted-hash row, so one metadata access serves
//!    both dedup and encryption.
//!
//! Timing/energy note: as in Table I of the paper, the duplicate-
//! confirmation read is charged `read + compare` ns, and the dedup logic is
//! charged only CRC + comparison energy (§IV-D). The candidate's one-time
//! pad is assumed regenerable from its colocated counter while the array
//! read is in flight, its cost hidden within the read — the paper's own
//! idealization.

use std::collections::HashMap;

use dewrite_crypto::{
    aes_line_energy_pj, CounterModeEngine, LineCounter, AES_LINE_LATENCY_NS, OTP_XOR_LATENCY_NS,
};
use dewrite_hashes::{HashAlgorithm, LineHasher, StrongKeyed, StrongScratch};
use dewrite_mem::CacheStats;
use dewrite_nvm::{LineAddr, NvmDevice, NvmError, Timing};

use crate::compare::lines_equal;
use crate::config::{DeWriteConfig, DigestMode, MetadataPersistence, SystemConfig, WriteMode};
use crate::dedup::{DedupIndex, WriteOutcome};
use crate::journal::MetaOp;
use crate::predictor::HistoryPredictor;
use crate::schemes::{BaseMetrics, MetaTable, ReadResult, SecureMemory, WriteResult};
use crate::tables::MAX_REFERENCE;
use crate::trace::{EventSink, Stage, WriteEvent, WritePath};

/// Energy of one hardware line comparison, pJ.
const COMPARE_ENERGY_PJ: u64 = 30;

/// Upper bound on candidate lines examined per duplicate confirmation.
/// The dedup logic is a fixed pipeline, not a list walker: after this many
/// mismatching (or saturated) candidates the write is treated as
/// non-duplicate. Real CRC collisions make buckets of 2 at most; deeper
/// buckets only arise when a saturated content accumulates extra copies.
const MAX_CANDIDATE_COMPARES: usize = 4;

/// DeWrite-specific counters beyond [`BaseMetrics`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DeWriteMetrics {
    /// Writes confirmed duplicate and eliminated.
    pub dup_eliminated: u64,
    /// Hash-store cache misses where PNA declined the in-NVM query.
    pub pna_skips: u64,
    /// Actual duplicates lost to PNA skips (ground truth).
    pub pna_missed_dups: u64,
    /// Duplicates declined because the target reference was saturated.
    pub saturated_skips: u64,
    /// Digest matches whose byte comparison failed (CRC collisions).
    pub false_matches: u64,
    /// Duplicates accepted on a strong-tag match alone, without a
    /// verify-read (always zero under [`DigestMode::Crc32Verify`]).
    pub assumed_dups: u64,
    /// Writes taking the parallel path (speculative encryption).
    pub parallel_writes: u64,
    /// Writes taking the direct path (deferred encryption).
    pub direct_writes: u64,
    /// Speculative encryptions discarded because the write was duplicate.
    pub wasted_encryptions: u64,
    /// Encryptions avoided outright (direct-path duplicates).
    pub saved_encryptions: u64,
    /// Predictor accuracy over all writes.
    pub predictor_accuracy: f64,
}

/// Per-partition metadata-cache statistics (Fig. 21).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeWriteCacheStats {
    /// Address-mapping table cache.
    pub addr_map: CacheStats,
    /// Inverted hash table cache.
    pub inverted: CacheStats,
    /// Hash table cache.
    pub hash: CacheStats,
    /// Free-space-management table cache.
    pub fsm: CacheStats,
}

/// Result of the candidate comparison loop: the confirmed duplicate (if
/// any), when detection resolved, and how the time split between array
/// verify reads and byte comparisons (for the trace breakdown).
struct ConfirmOutcome {
    matched: Option<LineAddr>,
    done_ns: u64,
    verify_ns: u64,
    compare_ns: u64,
}

/// The DeWrite controller over an NVM device.
///
/// ```
/// use dewrite_core::{DeWrite, DeWriteConfig, SecureMemory, SystemConfig};
/// use dewrite_nvm::LineAddr;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut mem = DeWrite::new(SystemConfig::for_lines(1024), DeWriteConfig::paper(), b"0123456789abcdef");
/// let line = vec![7u8; 256];
/// mem.write(LineAddr::new(0), &line, 0)?;
/// // The same content at another address is a duplicate: no NVM write.
/// let w = mem.write(LineAddr::new(1), &line, 1_000)?;
/// assert!(w.eliminated);
/// assert_eq!(mem.read(LineAddr::new(1), 2_000)?.data, line);
/// # Ok(())
/// # }
/// ```
pub struct DeWrite {
    config: SystemConfig,
    dw: DeWriteConfig,
    device: NvmDevice,
    engine: CounterModeEngine,
    hasher: Box<dyn LineHasher>,
    /// Strong keyed digest (per-run key derived from the encryption key)
    /// plus its per-controller scratch state; `Some` iff the digest mode is
    /// [`DigestMode::StrongKeyed`].
    strong: Option<(StrongKeyed, StrongScratch)>,
    index: DedupIndex,
    counters: HashMap<u64, LineCounter>,
    predictor: HistoryPredictor,
    addr_map_meta: MetaTable,
    inverted_meta: MetaTable,
    hash_meta: MetaTable,
    fsm_meta: MetaTable,
    metrics: BaseMetrics,
    dmetrics: DeWriteMetrics,
    /// Recently verified candidate contents (line, content), MRU at back.
    verify_buffer: std::collections::VecDeque<(u64, Vec<u8>)>,
    /// Data writes since the last epoch flush.
    writes_since_flush: u32,
    /// Metadata-mutation journal for external persistence (WAL); `None`
    /// (the default) keeps the hot path free of journaling work.
    journal: Option<Vec<MetaOp>>,
    /// Optional per-write event sink (observability; None on the hot path).
    sink: Option<Box<dyn EventSink>>,
    /// Scratch ciphertext buffer reused across writes (no per-write alloc).
    line_buf: Vec<u8>,
}

impl std::fmt::Debug for DeWrite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeWrite")
            .field("mode", &self.dw.mode)
            .field("pna", &self.dw.pna)
            .field("hasher", &self.hasher.algorithm())
            .field("writes", &self.metrics.writes)
            .finish_non_exhaustive()
    }
}

impl DeWrite {
    /// Build DeWrite over a fresh device.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails validation.
    pub fn new(config: SystemConfig, dw: DeWriteConfig, key: &[u8; 16]) -> Self {
        let device = NvmDevice::new(config.nvm.clone()).expect("validated config");
        let index = DedupIndex::with_domains(config.data_lines, dw.dedup_domains.max(1));
        Self::assemble(config, dw, key, device, index, HashMap::new())
    }

    /// Power off: hand back the durable state (metadata snapshot) and the
    /// physical device, consuming the controller.
    pub fn power_off(self) -> (crate::snapshot::Snapshot, NvmDevice) {
        let snapshot = self.snapshot();
        (snapshot, self.device)
    }

    /// Capture the durable metadata state without consuming the controller
    /// (the checkpoint primitive of the persistence layer).
    pub fn snapshot(&self) -> crate::snapshot::Snapshot {
        crate::snapshot::Snapshot::capture(&self.index, &self.counters, self.dw.fingerprint())
    }

    /// Enable (`true`) or disable (`false`) the metadata-mutation journal.
    /// While enabled, every write appends its durable-state changes as
    /// [`MetaOp`]s, collected with [`drain_meta_ops`](Self::drain_meta_ops).
    pub fn set_meta_journal(&mut self, enabled: bool) {
        self.journal = if enabled { Some(Vec::new()) } else { None };
    }

    /// Take the journal ops accumulated since the last drain (empty when
    /// journaling is disabled).
    pub fn drain_meta_ops(&mut self) -> Vec<MetaOp> {
        self.journal
            .as_mut()
            .map(std::mem::take)
            .unwrap_or_default()
    }

    /// Power on: rebuild a controller over an existing `device` from a
    /// durable `snapshot` (the inverse of [`power_off`](Self::power_off)).
    ///
    /// # Errors
    ///
    /// Returns a description of the inconsistency if the snapshot does not
    /// match the configuration or fails its own consistency checks.
    pub fn power_on(
        config: SystemConfig,
        dw: DeWriteConfig,
        key: &[u8; 16],
        device: NvmDevice,
        snapshot: &crate::snapshot::Snapshot,
    ) -> Result<Self, String> {
        if snapshot.lines != config.data_lines {
            return Err(format!(
                "snapshot covers {} lines, configuration expects {}",
                snapshot.lines, config.data_lines
            ));
        }
        let fp = dw.fingerprint();
        if snapshot.config_fp != fp {
            return Err(format!(
                "snapshot config fingerprint {:#018x} does not match the \
                 current DeWrite configuration's {fp:#018x}: the controller \
                 that captured it used a different scheme (mode/PNA/history \
                 width/hash algorithm/counter width/dedup domains), so its \
                 tables cannot be reinterpreted safely",
                snapshot.config_fp
            ));
        }
        if device.config() != &config.nvm {
            return Err("device configuration does not match".into());
        }
        let (index, counters) = snapshot.rebuild_with_domains(dw.dedup_domains.max(1))?;
        Ok(Self::assemble(config, dw, key, device, index, counters))
    }

    fn assemble(
        config: SystemConfig,
        dw: DeWriteConfig,
        key: &[u8; 16],
        device: NvmDevice,
        index: DedupIndex,
        counters: HashMap<u64, LineCounter>,
    ) -> Self {
        config.validate().expect("invalid system config");
        let line_size = config.nvm.line_size;
        let hit = config.meta_cache_hit_ns;
        let meta = config.meta_base();
        let data = config.data_lines;

        // Metadata subregions, laid out after the data region:
        // [addr map][inverted][hash][fsm].
        let addr_lines = (data * 4).div_ceil(line_size as u64).max(1);
        let hash_lines = (data * 9).div_ceil(line_size as u64).max(1);
        let fsm_lines = data.div_ceil(2048).max(1);
        let mut base = meta;
        let addr_base = base;
        base += addr_lines;
        let inv_base = base;
        base += addr_lines;
        let hash_base = base;
        base += hash_lines;
        let fsm_base = base;
        assert!(
            fsm_base + fsm_lines <= config.nvm.num_lines(),
            "metadata region too small: need {} lines past {}, device has {}              (size the config with SystemConfig::for_lines_with)",
            fsm_base + fsm_lines - meta,
            meta,
            config.nvm.num_lines()
        );

        let mc = dw.meta_cache;
        let addr_map_meta = MetaTable::new(
            mc.addr_map_entries,
            mc.replacement,
            addr_base,
            addr_lines,
            4,
            mc.prefetch_entries,
            true,
            hit,
            line_size,
        );
        let inverted_meta = MetaTable::new(
            mc.inverted_entries,
            mc.replacement,
            inv_base,
            addr_lines,
            4,
            mc.prefetch_entries,
            true,
            hit,
            line_size,
        );
        let hash_meta = MetaTable::new(
            mc.hash_entries,
            mc.replacement,
            hash_base,
            hash_lines,
            9,
            1,
            false,
            hit,
            line_size,
        );
        let fsm_meta = MetaTable::new(
            mc.fsm_groups,
            mc.replacement,
            fsm_base,
            fsm_lines,
            line_size,
            1,
            true,
            hit,
            line_size,
        );

        let mut addr_map_meta = addr_map_meta;
        let mut inverted_meta = inverted_meta;
        let mut hash_meta = hash_meta;
        let mut fsm_meta = fsm_meta;
        if dw.persistence == MetadataPersistence::WriteThrough {
            addr_map_meta.set_write_through(true);
            inverted_meta.set_write_through(true);
            hash_meta.set_write_through(true);
            fsm_meta.set_write_through(true);
        }

        DeWrite {
            engine: CounterModeEngine::new(key),
            hasher: dw.hasher.hasher(),
            strong: (dw.digest_mode == DigestMode::StrongKeyed)
                .then(|| (StrongKeyed::derive(key), StrongScratch::new())),
            index,
            counters,
            predictor: HistoryPredictor::new(dw.history_bits),
            addr_map_meta,
            inverted_meta,
            hash_meta,
            fsm_meta,
            metrics: BaseMetrics::default(),
            dmetrics: DeWriteMetrics::default(),
            verify_buffer: std::collections::VecDeque::new(),
            writes_since_flush: 0,
            journal: None,
            sink: None,
            line_buf: Vec::new(),
            device,
            config,
            dw,
        }
    }

    /// Apply the configured metadata-persistence policy after a write.
    fn apply_persistence(&mut self, now_ns: u64) {
        if let MetadataPersistence::EpochFlush { interval } = self.dw.persistence {
            self.writes_since_flush += 1;
            if self.writes_since_flush >= interval {
                self.writes_since_flush = 0;
                self.flush_metadata(now_ns);
            }
        }
    }

    /// Flush all dirty cached metadata to NVM. Returns the number of
    /// entries written back.
    pub fn flush_metadata(&mut self, now_ns: u64) -> u64 {
        let mut flushed = 0;
        flushed += self
            .addr_map_meta
            .flush_all(&mut self.device, now_ns, &mut self.metrics);
        flushed += self
            .inverted_meta
            .flush_all(&mut self.device, now_ns, &mut self.metrics);
        flushed += self
            .hash_meta
            .flush_all(&mut self.device, now_ns, &mut self.metrics);
        flushed += self
            .fsm_meta
            .flush_all(&mut self.device, now_ns, &mut self.metrics);
        flushed
    }

    /// Dirty (crash-vulnerable) metadata entries currently cached. Zero
    /// under write-through; bounded by one epoch under epoch flush.
    pub fn dirty_metadata_entries(&self) -> u64 {
        self.addr_map_meta.dirty_entries()
            + self.inverted_meta.dirty_entries()
            + self.hash_meta.dirty_entries()
            + self.fsm_meta.dirty_entries()
    }

    /// Materialize the §III-C colocated metadata layout from the current
    /// controller state (Figs. 8–9): mappings and resident hashes in their
    /// slots, counters embedded in the null ones. Used to validate the
    /// null-slot invariant and the 6.25% storage arithmetic on real end
    /// states (`repro ext-layout`).
    pub fn colocation_layout(&self) -> crate::colocate::ColocatedStore {
        let mut store = crate::colocate::ColocatedStore::new(self.config.data_lines);
        for i in 0..self.config.data_lines {
            let line = LineAddr::new(i);
            if let Some(real) = self.index.resolve(line) {
                if real != line {
                    store.set_mapping(line, Some(real));
                }
            }
            if let Some(digest) = self.index.digest_of(line) {
                store.set_resident_hash(line, Some(Self::fold_digest(digest)));
            }
        }
        for (&line, &counter) in &self.counters {
            store.set_counter(LineAddr::new(line), counter);
        }
        store
    }

    /// Integrity scrub: the recovery-time consistency check a controller
    /// runs after a restart. Verifies, for every written address, that
    ///
    /// 1. the address resolves to a resident line,
    /// 2. the resident line's stored ciphertext decrypts under its counter
    ///    to content whose fingerprint matches the inverted-table digest,
    /// 3. the dedup index invariants hold.
    ///
    /// Returns the number of lines checked.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency (e.g. after NVM
    /// corruption or a crash that lost unflushed metadata).
    pub fn scrub(&self) -> Result<u64, String> {
        self.index.check_invariants()?;
        let mut checked = 0;
        for i in 0..self.config.data_lines {
            let init = LineAddr::new(i);
            let Some(real) = self.index.resolve(init) else {
                continue;
            };
            let expected_digest = self
                .index
                .digest_of(real)
                .ok_or_else(|| format!("{init} resolves to non-resident {real}"))?;
            let plaintext = self.plaintext_of(real)?;
            let actual = self.compute_digest_readonly(&plaintext);
            if actual != expected_digest {
                return Err(format!(
                    "line {real}: stored content hashes to {actual:#x}, \
                     inverted table says {expected_digest:#x}"
                ));
            }
            checked += 1;
        }
        Ok(checked)
    }

    /// Fault injection for recovery testing: flip one byte of the stored
    /// (encrypted) contents of `line` directly in the array, bypassing the
    /// controller — as a stuck cell or undetected disturb would.
    pub fn inject_corruption(&mut self, line: LineAddr) {
        let mut raw = self.device.peek_line(line).expect("line in range");
        raw[0] ^= 0xFF;
        self.device
            .write_line_with_flips(line, &raw, 8, 0)
            .expect("line in range");
        // The dedup logic's verify buffer would mask the corruption.
        self.verify_buffer_invalidate(line);
    }

    fn verify_buffer_lookup(&mut self, real: LineAddr) -> Option<Vec<u8>> {
        let idx = self
            .verify_buffer
            .iter()
            .position(|(l, _)| *l == real.index())?;
        let entry = self.verify_buffer.remove(idx).expect("index valid");
        let content = entry.1.clone();
        self.verify_buffer.push_back(entry); // refresh MRU
        Some(content)
    }

    fn verify_buffer_insert(&mut self, real: LineAddr, content: Vec<u8>) {
        let cap = self.dw.verify_buffer_entries;
        if cap == 0 {
            return;
        }
        self.verify_buffer.retain(|(l, _)| *l != real.index());
        if self.verify_buffer.len() >= cap {
            self.verify_buffer.pop_front();
        }
        self.verify_buffer.push_back((real.index(), content));
    }

    fn verify_buffer_invalidate(&mut self, line: LineAddr) {
        self.verify_buffer.retain(|(l, _)| *l != line.index());
    }

    fn check_addr(&self, addr: LineAddr) -> Result<(), NvmError> {
        if addr.index() >= self.config.data_lines {
            Err(NvmError::AddressOutOfRange {
                addr,
                num_lines: self.config.data_lines,
            })
        } else {
            Ok(())
        }
    }

    /// The system configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// The DeWrite configuration.
    pub fn dewrite_config(&self) -> &DeWriteConfig {
        &self.dw
    }

    /// DeWrite-specific metrics (predictor accuracy filled in).
    pub fn dewrite_metrics(&self) -> DeWriteMetrics {
        DeWriteMetrics {
            saturated_skips: self.index.saturated_skips(),
            false_matches: self.index.false_matches(),
            predictor_accuracy: self.predictor.accuracy(),
            ..self.dmetrics
        }
    }

    /// Per-partition metadata-cache statistics.
    pub fn cache_stats(&self) -> DeWriteCacheStats {
        DeWriteCacheStats {
            addr_map: self.addr_map_meta.cache_stats(),
            inverted: self.inverted_meta.cache_stats(),
            hash: self.hash_meta.cache_stats(),
            fsm: self.fsm_meta.cache_stats(),
        }
    }

    /// The dedup index (reference distributions, residency).
    pub fn index(&self) -> &DedupIndex {
        &self.index
    }

    /// Fold a 64-bit fingerprint into a 32-bit value: the hash-table key in
    /// CRC mode (zero-extended back to `u64`), and the 4-byte colocated
    /// inverted-row digest in both modes (§III-C fixes that slot at 32
    /// bits). For zero-extended CRC digests the fold is the identity.
    fn fold_digest(d: u64) -> u32 {
        (d ^ (d >> 32)) as u32
    }

    /// The index digest of `data` under the configured digest mode: the
    /// folded light hash zero-extended, or the 64-bit strong keyed tag.
    fn compute_digest(&mut self, data: &[u8]) -> u64 {
        match self.strong.as_mut() {
            Some((strong, scratch)) => strong.digest_with(data, scratch),
            None => u64::from(Self::fold_digest(self.hasher.digest(data))),
        }
    }

    /// [`compute_digest`](Self::compute_digest) without touching controller
    /// state (cold paths: scrub uses a throwaway scratch).
    fn compute_digest_readonly(&self, data: &[u8]) -> u64 {
        match self.strong.as_ref() {
            Some((strong, _)) => strong.digest_with(data, &mut StrongScratch::new()),
            None => u64::from(Self::fold_digest(self.hasher.digest(data))),
        }
    }

    /// The hardware cost charged per fingerprint under the configured mode.
    fn digest_cost(&self) -> dewrite_hashes::HashCost {
        if self.strong.is_some() {
            HashAlgorithm::StrongKeyed.cost()
        } else {
            self.hasher.cost()
        }
    }

    /// Decrypt the resident line `real` without timing side effects
    /// (used for byte comparison; timing is charged by the caller).
    ///
    /// # Errors
    ///
    /// Every resident line is written encrypted, so a missing counter means
    /// the controller state is inconsistent (lost metadata, corrupted
    /// snapshot). Returning the raw ciphertext would silently compare
    /// garbage; fail loudly instead.
    fn plaintext_of(&self, real: LineAddr) -> Result<Vec<u8>, String> {
        let ciphertext = self.device.peek_line(real).expect("resident line in range");
        match self.counters.get(&real.index()) {
            Some(&ctr) => Ok(self.engine.decrypt_line(&ciphertext, real.index(), ctr)),
            None => Err(format!("resident line {real} has no encryption counter")),
        }
    }

    /// Run the candidate comparison loop with timed NVM reads — or, under
    /// [`DigestMode::StrongKeyed`], accept the first live candidate on the
    /// 64-bit tag match alone: no verify-read, no decrypt, no byte compare
    /// (the verify-free commit path; counted as `assumed_dups`).
    fn confirm_duplicate(
        &mut self,
        init: LineAddr,
        digest: u64,
        data: &[u8],
        start_ns: u64,
    ) -> ConfirmOutcome {
        let timing: Timing = self.config.nvm.timing;
        let mut t = start_ns;
        let mut verify_ns = 0;
        let mut compare_ns = 0;
        // Saturated entries are visible in the hash entry itself (the
        // 8-bit reference field, §III-B2): they are skipped without any
        // read — further duplicates of that content use its one
        // non-saturated successor copy instead.
        let mut skipped_saturated = false;
        let candidates: Vec<_> = self
            .index
            .candidates_for(digest, init)
            .into_iter()
            .filter(|e| {
                if e.reference == MAX_REFERENCE {
                    skipped_saturated = true;
                    false
                } else {
                    true
                }
            })
            .take(MAX_CANDIDATE_COMPARES)
            .collect();
        if self.strong.is_some() {
            // Verify-free: every candidate already matched the full stored
            // tag, so the first live one *is* the duplicate. Detection
            // resolves at the hash-store query; the array is never read.
            let matched = candidates.first().map(|e| e.real);
            if matched.is_some() {
                self.dmetrics.assumed_dups += 1;
            } else if skipped_saturated {
                self.index.note_saturated_skip();
            }
            return ConfirmOutcome {
                matched,
                done_ns: t,
                verify_ns,
                compare_ns,
            };
        }
        for entry in candidates {
            // Hot candidates sit in the dedup logic's verify buffer and
            // confirm without touching the array.
            let content = match self.verify_buffer_lookup(entry.real) {
                Some(content) => content,
                None => {
                    let (_, access) = self
                        .device
                        .read_line(entry.real, t)
                        .expect("candidate line in range");
                    self.metrics.verify_reads += 1;
                    verify_ns += access.slot.finish_ns - t;
                    t = access.slot.finish_ns;
                    let content = self
                        .plaintext_of(entry.real)
                        .expect("resident candidate must have a counter");
                    self.verify_buffer_insert(entry.real, content.clone());
                    content
                }
            };
            self.device.charge_dedup_pj(COMPARE_ENERGY_PJ);
            // Per the paper's accounting (§IV-D), dedup-logic energy is the
            // CRC + comparison only: the candidate's pad is assumed
            // regenerable from its colocated counter while the array read is
            // in flight, with both its latency and energy hidden in the
            // read (Table I charges the duplicate path 15 + 75 + 1 ns).
            t += timing.compare_ns;
            compare_ns += timing.compare_ns;
            if lines_equal(&content, data) {
                return ConfirmOutcome {
                    matched: Some(entry.real),
                    done_ns: t,
                    verify_ns,
                    compare_ns,
                };
            }
            self.index.note_false_match();
        }
        if skipped_saturated {
            self.index.note_saturated_skip();
        }
        ConfirmOutcome {
            matched: None,
            done_ns: t,
            verify_ns,
            compare_ns,
        }
    }

    /// Post-commit metadata updates for a duplicate write (cache traffic
    /// only; off the critical path). Returns when the last update lands.
    fn commit_duplicate_metadata(
        &mut self,
        init: LineAddr,
        real: LineAddr,
        digest: u64,
        freed_probe: Option<LineAddr>,
        now_ns: u64,
    ) -> u64 {
        let mut done = self
            .addr_map_meta
            .write_insert(init.index(), &mut self.device, now_ns, &mut self.metrics)
            .done_ns;
        done = done.max(
            self.hash_meta
                .write_insert(digest, &mut self.device, now_ns, &mut self.metrics)
                .done_ns,
        );
        // §III-C: the dedup target's reference count lives in its colocated
        // inverted-table row, so confirming a duplicate dirties that row too.
        done = done.max(
            self.inverted_meta
                .write_insert(real.index(), &mut self.device, now_ns, &mut self.metrics)
                .done_ns,
        );
        if let Some(freed) = freed_probe {
            done = done.max(
                self.inverted_meta
                    .write_insert(freed.index(), &mut self.device, now_ns, &mut self.metrics)
                    .done_ns,
            );
            done = done.max(
                self.fsm_meta
                    .write_insert(
                        freed.index() / 2048,
                        &mut self.device,
                        now_ns,
                        &mut self.metrics,
                    )
                    .done_ns,
            );
        }
        done
    }

    /// Post-commit metadata updates for a stored (non-duplicate) write.
    /// Returns when the last update lands.
    fn commit_store_metadata(
        &mut self,
        init: LineAddr,
        target: LineAddr,
        digest: u64,
        freed: Option<LineAddr>,
        now_ns: u64,
    ) -> u64 {
        let mut done = self
            .addr_map_meta
            .write_insert(init.index(), &mut self.device, now_ns, &mut self.metrics)
            .done_ns;
        done = done.max(
            self.inverted_meta
                .write_insert(target.index(), &mut self.device, now_ns, &mut self.metrics)
                .done_ns,
        );
        done = done.max(
            self.hash_meta
                .write_insert(digest, &mut self.device, now_ns, &mut self.metrics)
                .done_ns,
        );
        done = done.max(
            self.fsm_meta
                .write_insert(
                    target.index() / 2048,
                    &mut self.device,
                    now_ns,
                    &mut self.metrics,
                )
                .done_ns,
        );
        if let Some(freed) = freed {
            done = done.max(
                self.inverted_meta
                    .write_insert(freed.index(), &mut self.device, now_ns, &mut self.metrics)
                    .done_ns,
            );
            done = done.max(
                self.fsm_meta
                    .write_insert(
                        freed.index() / 2048,
                        &mut self.device,
                        now_ns,
                        &mut self.metrics,
                    )
                    .done_ns,
            );
        }
        done
    }
}

impl SecureMemory for DeWrite {
    fn name(&self) -> String {
        format!(
            "DeWrite ({} mode{})",
            self.dw.mode,
            if self.dw.pna { ", PNA" } else { "" }
        )
    }

    fn write(&mut self, init: LineAddr, data: &[u8], now_ns: u64) -> Result<WriteResult, NvmError> {
        self.check_addr(init)?;
        if data.len() != self.config.nvm.line_size {
            return Err(NvmError::WrongLineSize {
                got: data.len(),
                expected: self.config.nvm.line_size,
            });
        }
        self.metrics.writes += 1;

        // 1. Fingerprint: the light hash (15 ns), or the strong keyed tag
        // (40 ns) whose match needs no verification.
        let cost = self.digest_cost();
        let digest_ns = cost.latency_ns;
        let digest = self.compute_digest(data);
        let hash_done = now_ns + digest_ns;
        self.metrics.hash_ops += 1;
        self.device.charge_dedup_pj(cost.energy_pj);

        // 2. Mode decision (parallelism between dedup and encryption).
        let predicted_dup = self.predictor.predict_duplicate();
        let speculative = match self.dw.mode {
            WriteMode::Direct => false,
            WriteMode::Parallel => true,
            WriteMode::Predictive => !predicted_dup,
        };
        if speculative {
            self.dmetrics.parallel_writes += 1;
        } else {
            self.dmetrics.direct_writes += 1;
        }

        // 3. Hash-store query with PNA.
        let mut pna_skip = false;
        let (candidates_known, query_done) = match self.hash_meta.probe(digest, false, hash_done) {
            Some(hit) => (true, hit.done_ns),
            None if self.dw.pna && !predicted_dup => {
                // PNA: decline the in-NVM query; treat as non-duplicate.
                self.dmetrics.pna_skips += 1;
                pna_skip = true;
                (false, hash_done + self.config.meta_cache_hit_ns)
            }
            None => {
                let acc = self.hash_meta.fetch(
                    digest,
                    false,
                    &mut self.device,
                    hash_done,
                    &mut self.metrics,
                );
                (true, acc.done_ns)
            }
        };

        // 4. Detection: candidate reads + byte comparison.
        let mut verify_ns = None;
        let mut compare_ns = None;
        let (matched, detect_done) = if candidates_known {
            let confirm = self.confirm_duplicate(init, digest, data, query_done);
            verify_ns = Some(confirm.verify_ns);
            compare_ns = Some(confirm.compare_ns);
            (confirm.matched, confirm.done_ns)
        } else {
            // Ground truth for PNA accounting.
            let missed = {
                let device = &self.device;
                let engine = &self.engine;
                let counters = &self.counters;
                let decrypt = |real: LineAddr| {
                    let ct = device.peek_line(real).expect("in range");
                    let &c = counters
                        .get(&real.index())
                        .expect("resident line must have a counter");
                    engine.decrypt_line(&ct, real.index(), c)
                };
                self.index
                    .candidates_for(digest, init)
                    .iter()
                    .find(|e| e.reference != MAX_REFERENCE && lines_equal(&decrypt(e.real), data))
                    .map(|e| e.real)
            };
            if missed.is_some() {
                self.dmetrics.pna_missed_dups += 1;
            }
            (None, query_done)
        };

        // 5. Speculative encryption (parallel path) starts at `now`.
        let spec_counter_probe = if speculative {
            // Counter comes with the colocated metadata row of the current
            // mapping (or home) of `init`.
            let row = self.index.resolve(init).unwrap_or(init);
            let acc = self.inverted_meta.access(
                row.index(),
                false,
                &mut self.device,
                now_ns,
                &mut self.metrics,
            );
            self.metrics.aes_line_ops += 1;
            self.device.charge_aes_pj(aes_line_energy_pj(data.len()));
            Some(acc.done_ns + AES_LINE_LATENCY_NS)
        } else {
            None
        };

        let mut event = None;
        let result = match matched {
            Some(real) => {
                // Duplicate: the NVM write is eliminated.
                let outcome = self.index.apply_duplicate(init, real);
                let WriteOutcome::Duplicate { silent, freed, .. } = outcome else {
                    unreachable!("apply_duplicate returns Duplicate");
                };
                if let Some(freed) = freed {
                    self.verify_buffer_invalidate(freed);
                }
                if let Some(journal) = self.journal.as_mut() {
                    // A silent store changed no metadata; nothing to log.
                    if !silent {
                        journal.push(MetaOp::MapSet {
                            init: init.index(),
                            real: real.index(),
                        });
                        if let Some(freed) = freed {
                            journal.push(MetaOp::ResidentDel {
                                real: freed.index(),
                            });
                        }
                    }
                }
                self.dmetrics.dup_eliminated += 1;
                self.metrics.writes_eliminated += 1;
                if speculative {
                    self.dmetrics.wasted_encryptions += 1;
                } else {
                    self.dmetrics.saved_encryptions += 1;
                }
                let meta_done =
                    self.commit_duplicate_metadata(init, real, digest, freed, detect_done);
                self.predictor.record(true);
                if self.sink.is_some() {
                    let mut e = WriteEvent::new(WritePath::Duplicate);
                    e.predicted_dup = predicted_dup;
                    e.pna_skip = pna_skip;
                    e.total_ns = detect_done - now_ns;
                    e.set_stage(Stage::Digest, digest_ns);
                    e.set_stage(Stage::HashProbe, query_done - hash_done);
                    if let Some(ns) = verify_ns {
                        e.set_stage(Stage::VerifyRead, ns);
                    }
                    if let Some(ns) = compare_ns {
                        e.set_stage(Stage::Compare, ns);
                    }
                    if let Some(spec_done) = spec_counter_probe {
                        // Wasted speculative encryption: ran from write issue.
                        e.set_stage(Stage::Encrypt, spec_done - now_ns);
                    }
                    e.set_stage(Stage::Metadata, meta_done.saturating_sub(detect_done));
                    event = Some(e);
                }
                WriteResult {
                    critical_ns: detect_done - now_ns,
                    nvm_finish_ns: None,
                    eliminated: true,
                    total_ns: detect_done - now_ns,
                }
            }
            None => {
                // Non-duplicate: store.
                let outcome = self.index.apply_store(init, digest);
                let WriteOutcome::Stored { target, freed, .. } = outcome else {
                    unreachable!("apply_store returns Stored");
                };

                // Counter for the target line (colocated row access), unless
                // the speculative path already fetched it.
                let enc_done = match spec_counter_probe {
                    Some(done) => done,
                    None => {
                        let acc = self.inverted_meta.access(
                            target.index(),
                            false,
                            &mut self.device,
                            detect_done,
                            &mut self.metrics,
                        );
                        self.metrics.aes_line_ops += 1;
                        self.device.charge_aes_pj(aes_line_energy_pj(data.len()));
                        acc.done_ns + AES_LINE_LATENCY_NS
                    }
                };

                self.verify_buffer_invalidate(target);
                if let Some(freed) = freed {
                    self.verify_buffer_invalidate(freed);
                }
                let counter = self.counters.entry(target.index()).or_default();
                let _ = counter.increment();
                let counter = *counter;
                if let Some(journal) = self.journal.as_mut() {
                    journal.push(MetaOp::ResidentSet {
                        real: target.index(),
                        digest,
                    });
                    journal.push(MetaOp::MapSet {
                        init: init.index(),
                        real: target.index(),
                    });
                    journal.push(MetaOp::CounterSet {
                        line: target.index(),
                        value: counter.value(),
                    });
                    if let Some(freed) = freed {
                        journal.push(MetaOp::ResidentDel {
                            real: freed.index(),
                        });
                    }
                }
                self.line_buf.resize(data.len(), 0);
                self.engine
                    .encrypt_line_into(data, target.index(), counter, &mut self.line_buf);

                let ready = detect_done.max(enc_done);
                let old = self.device.peek_line(target)?;
                let flips =
                    crate::schemes::encoded_flips(self.config.bit_encoding, &old, &self.line_buf);
                let access =
                    self.device
                        .write_line_with_flips(target, &self.line_buf, flips, ready)?;
                let meta_done = self.commit_store_metadata(init, target, digest, freed, ready);
                self.predictor.record(false);
                if self.sink.is_some() {
                    let mut e = WriteEvent::new(WritePath::Stored);
                    e.predicted_dup = predicted_dup;
                    e.pna_skip = pna_skip;
                    e.total_ns = access.slot.finish_ns - now_ns;
                    e.set_stage(Stage::Digest, digest_ns);
                    e.set_stage(Stage::HashProbe, query_done - hash_done);
                    if let Some(ns) = verify_ns {
                        e.set_stage(Stage::VerifyRead, ns);
                    }
                    if let Some(ns) = compare_ns {
                        e.set_stage(Stage::Compare, ns);
                    }
                    // Speculative encryption ran from write issue; deferred
                    // encryption started once detection resolved.
                    let enc_start = if spec_counter_probe.is_some() {
                        now_ns
                    } else {
                        detect_done
                    };
                    e.set_stage(Stage::Encrypt, enc_done - enc_start);
                    e.set_stage(Stage::ArrayWrite, access.slot.finish_ns - ready);
                    e.set_stage(Stage::Metadata, meta_done.saturating_sub(ready));
                    event = Some(e);
                }
                WriteResult {
                    critical_ns: ready - now_ns,
                    nvm_finish_ns: Some(access.slot.finish_ns),
                    eliminated: false,
                    total_ns: access.slot.finish_ns - now_ns,
                }
            }
        };
        self.apply_persistence(now_ns);
        if let (Some(e), Some(sink)) = (event, self.sink.as_mut()) {
            sink.record(&e);
        }
        Ok(result)
    }

    fn read(&mut self, init: LineAddr, now_ns: u64) -> Result<ReadResult, NvmError> {
        self.check_addr(init)?;
        self.metrics.reads += 1;

        // 1. Address-mapping row (mapping + colocated counter of `init`).
        let map_acc = self.addr_map_meta.access(
            init.index(),
            false,
            &mut self.device,
            now_ns,
            &mut self.metrics,
        );

        match self.index.resolve(init) {
            Some(real) => {
                // 2. If remapped, the counter lives with the target's row.
                let ctr_done = if real == init {
                    map_acc.done_ns
                } else {
                    self.inverted_meta
                        .access(
                            real.index(),
                            false,
                            &mut self.device,
                            map_acc.done_ns,
                            &mut self.metrics,
                        )
                        .done_ns
                };

                // 3. Array read (starts once the mapping is known) overlaps
                // pad generation (starts once the counter is known).
                let (ciphertext, access) = self.device.read_line(real, map_acc.done_ns)?;
                let counter = *self
                    .counters
                    .get(&real.index())
                    .expect("resident line has counter");
                // Read-side pad energy is not charged (write-dominated
                // accounting, identical across schemes; see CmeBaseline).
                let pad_done = ctr_done + AES_LINE_LATENCY_NS;
                let done = access.slot.finish_ns.max(pad_done) + OTP_XOR_LATENCY_NS;
                let data = self.engine.decrypt_line(&ciphertext, real.index(), counter);
                Ok(ReadResult {
                    data,
                    latency_ns: done - now_ns,
                })
            }
            None => {
                // Never written: logically zero. The home line may have
                // been reallocated to hold another address's data, so the
                // physical bytes must NOT be exposed — the controller knows
                // from the (absent) mapping that this address is unwritten.
                // The array read still happens (timing parity with a
                // controller that probes before deciding).
                let (_, access) = self.device.read_line(init, map_acc.done_ns)?;
                Ok(ReadResult {
                    data: vec![0u8; self.config.nvm.line_size],
                    latency_ns: access.slot.finish_ns - now_ns,
                })
            }
        }
    }

    fn device(&self) -> &NvmDevice {
        &self.device
    }

    fn base_metrics(&self) -> BaseMetrics {
        self.metrics
    }

    fn set_event_sink(&mut self, sink: Box<dyn EventSink>) {
        self.sink = Some(sink);
    }

    fn take_event_sink(&mut self) -> Option<Box<dyn EventSink>> {
        self.sink.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const KEY: &[u8; 16] = b"dewrite test key";

    fn mem() -> DeWrite {
        DeWrite::new(SystemConfig::for_lines(4096), DeWriteConfig::paper(), KEY)
    }

    fn line(tag: u8) -> Vec<u8> {
        (0..256).map(|i| tag.wrapping_add(i as u8)).collect()
    }

    #[test]
    fn roundtrip_through_encryption() {
        let mut m = mem();
        let data = line(1);
        m.write(LineAddr::new(0), &data, 0).unwrap();
        assert_eq!(m.read(LineAddr::new(0), 1_000).unwrap().data, data);
        // Stored bytes are ciphertext.
        assert_ne!(m.device().peek_line(LineAddr::new(0)).unwrap(), data);
    }

    #[test]
    fn duplicate_write_is_eliminated() {
        let mut m = mem();
        let data = line(2);
        let w1 = m.write(LineAddr::new(0), &data, 0).unwrap();
        assert!(!w1.eliminated);
        let w2 = m.write(LineAddr::new(9), &data, 10_000).unwrap();
        assert!(w2.eliminated);
        assert!(w2.nvm_finish_ns.is_none());
        // Both addresses read the same content.
        assert_eq!(m.read(LineAddr::new(9), 20_000).unwrap().data, data);
        assert_eq!(m.device().writes(), 1 + m.base_metrics().meta_nvm_writes);
    }

    #[test]
    fn duplicate_detection_latency_matches_table_1() {
        let mut m = mem();
        let data = line(3);
        m.write(LineAddr::new(0), &data, 0).unwrap();
        // Warm the predictor into the duplicate state so the hash query path
        // is exercised without PNA interference.
        let mut t = 100_000;
        let mut last = None;
        for i in 1..6 {
            let w = m.write(LineAddr::new(i), &data, t).unwrap();
            t += 50_000;
            last = Some(w);
        }
        let w = last.unwrap();
        assert!(w.eliminated);
        // 15 (CRC) + t_Q' + confirmation + 1 (compare): a cold candidate
        // costs a 75 ns array read (the paper's 91 ns total); a hot one is
        // confirmed from the dedup logic's verify buffer for just the
        // comparison. Either way the duplicate path stays far below the
        // 300 ns write latency.
        assert!(w.total_ns >= 17, "latency {}", w.total_ns);
        assert!(w.total_ns <= 120, "latency {}", w.total_ns);
    }

    #[test]
    fn non_duplicate_parallel_path_overlaps_encryption() {
        let mut m = mem();
        // Unique contents: predictor stays in non-dup state → parallel path.
        let mut t = 0;
        let mut totals = Vec::new();
        for i in 0..20u64 {
            let mut data = line(i as u8);
            data[0..8].copy_from_slice(&i.to_le_bytes());
            let w = m.write(LineAddr::new(i), &data, t).unwrap();
            totals.push(w);
            t += 10_000;
        }
        let w = totals.last().unwrap();
        assert!(!w.eliminated);
        // Warm caches: critical ≈ max(detect ~16, counter+AES ~97) = ~97,
        // plus the 300 ns array write.
        assert!(w.total_ns <= 97 + 300 + 20, "total {}", w.total_ns);
        let dm = m.dewrite_metrics();
        assert!(dm.parallel_writes > dm.direct_writes);
    }

    #[test]
    fn pna_skips_nvm_query_for_predicted_non_duplicates() {
        let mut m = mem();
        let mut t = 0;
        // All-unique stream: every hash-store probe misses, predictor says
        // non-dup, so PNA must skip the in-NVM query each time (after the
        // first few warmup writes).
        for i in 0..50u64 {
            let mut data = line(i as u8);
            data[0..8].copy_from_slice(&i.to_le_bytes());
            m.write(LineAddr::new(i), &data, t).unwrap();
            t += 10_000;
        }
        let dm = m.dewrite_metrics();
        assert!(dm.pna_skips >= 45, "pna_skips {}", dm.pna_skips);
        assert_eq!(dm.pna_missed_dups, 0);
    }

    #[test]
    fn pna_can_miss_duplicates() {
        let mut cfg = DeWriteConfig::paper();
        // Shrink the hash cache so resident digests fall out.
        cfg.meta_cache.hash_entries = 8;
        let mut m = DeWrite::new(SystemConfig::for_lines(4096), cfg, KEY);
        let mut t = 0;
        // Interleave unique writes (keeping the predictor at non-dup) with
        // occasional duplicates whose digests have been evicted.
        let dup = line(200);
        m.write(LineAddr::new(4000), &dup, t).unwrap();
        for i in 0..100u64 {
            t += 10_000;
            let mut data = line(i as u8);
            data[0..8].copy_from_slice(&(i + 7).to_le_bytes());
            m.write(LineAddr::new(i), &data, t).unwrap();
        }
        t += 10_000;
        let w = m.write(LineAddr::new(4001), &dup, t).unwrap();
        // The duplicate was missed: stored, not eliminated.
        assert!(!w.eliminated);
        assert!(m.dewrite_metrics().pna_missed_dups >= 1);
        // Correctness is unaffected.
        assert_eq!(m.read(LineAddr::new(4001), t + 50_000).unwrap().data, dup);
    }

    #[test]
    fn direct_mode_never_speculates() {
        let mut cfg = DeWriteConfig::paper();
        cfg.mode = WriteMode::Direct;
        let mut m = DeWrite::new(SystemConfig::for_lines(1024), cfg, KEY);
        let mut t = 0;
        for i in 0..10u64 {
            let mut data = line(i as u8);
            data[0..8].copy_from_slice(&i.to_le_bytes());
            m.write(LineAddr::new(i), &data, t).unwrap();
            t += 10_000;
        }
        let dm = m.dewrite_metrics();
        assert_eq!(dm.parallel_writes, 0);
        assert_eq!(dm.direct_writes, 10);
        assert_eq!(dm.wasted_encryptions, 0);
    }

    #[test]
    fn parallel_mode_wastes_encryption_on_duplicates() {
        let mut cfg = DeWriteConfig::paper();
        cfg.mode = WriteMode::Parallel;
        let mut m = DeWrite::new(SystemConfig::for_lines(1024), cfg, KEY);
        let data = line(9);
        m.write(LineAddr::new(0), &data, 0).unwrap();
        m.write(LineAddr::new(1), &data, 10_000).unwrap();
        let dm = m.dewrite_metrics();
        assert_eq!(dm.wasted_encryptions, 1);
        assert_eq!(dm.saved_encryptions, 0);
    }

    #[test]
    fn shared_content_survives_owner_overwrite() {
        let mut m = mem();
        let shared = line(7);
        let fresh = line(8);
        m.write(LineAddr::new(0), &shared, 0).unwrap();
        m.write(LineAddr::new(1), &shared, 10_000).unwrap(); // dedup → line 0
        m.write(LineAddr::new(0), &fresh, 20_000).unwrap(); // owner moves away
        assert_eq!(m.read(LineAddr::new(1), 30_000).unwrap().data, shared);
        assert_eq!(m.read(LineAddr::new(0), 40_000).unwrap().data, fresh);
        m.index().check_invariants().unwrap();
    }

    #[test]
    fn unwritten_reads_return_zeros() {
        let mut m = mem();
        let r = m.read(LineAddr::new(55), 0).unwrap();
        assert!(r.data.iter().all(|&b| b == 0));
    }

    #[test]
    fn bounds_and_size_checks() {
        let mut m = mem();
        assert!(m.write(LineAddr::new(4096), &line(0), 0).is_err());
        assert!(m.read(LineAddr::new(4096), 0).is_err());
        assert!(m.write(LineAddr::new(0), &[0u8; 16], 0).is_err());
    }

    #[test]
    fn write_reduction_tracks_duplicate_share() {
        let mut m = mem();
        let mut t = 0;
        let dup = line(100);
        m.write(LineAddr::new(0), &dup, t).unwrap();
        for i in 1..100u64 {
            t += 5_000;
            if i % 2 == 0 {
                m.write(LineAddr::new(i), &dup, t).unwrap();
            } else {
                let mut data = line(i as u8);
                data[0..8].copy_from_slice(&i.to_le_bytes());
                m.write(LineAddr::new(i), &data, t).unwrap();
            }
        }
        let b = m.base_metrics();
        let reduction = b.writes_eliminated as f64 / b.writes as f64;
        assert!((0.35..0.55).contains(&reduction), "reduction {reduction}");
        m.index().check_invariants().unwrap();
    }

    #[test]
    fn verify_free_matches_verify_on_for_collision_free_traces() {
        // The same deterministic workload through both digest modes: on a
        // trace whose distinct contents collide in neither fingerprint,
        // the two modes must make identical dedup decisions — the same
        // per-write eliminations, the same totals, the same read-back
        // bytes. Only the *accounting* of how duplicates were confirmed
        // may differ. PNA is off in both legs: its prediction consults
        // digest-indexed cache state, so with it on, the two modes could
        // legitimately skip different queries.
        let cfg = DeWriteConfig {
            pna: false,
            ..DeWriteConfig::paper()
        };
        let sys = SystemConfig::for_lines(4096);
        let mut verify = DeWrite::new(sys.clone(), cfg, KEY);
        let mut free = DeWrite::new(
            sys,
            DeWriteConfig {
                digest_mode: DigestMode::StrongKeyed,
                ..cfg
            },
            KEY,
        );
        let mut x = 0x1234_5678_9ABC_DEF0u64;
        let mut t = 0u64;
        for i in 0..600u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let addr = LineAddr::new(x % 512);
            let content = line((x % 24) as u8); // 24 contents: duplicate-heavy
            let a = verify.write(addr, &content, t).unwrap();
            let b = free.write(addr, &content, t).unwrap();
            assert_eq!(a.eliminated, b.eliminated, "write {i} decision diverged");
            t += 2_000;
        }
        assert_eq!(
            verify.base_metrics().writes_eliminated,
            free.base_metrics().writes_eliminated
        );
        for a in 0..512u64 {
            t += 1_000;
            assert_eq!(
                verify.read(LineAddr::new(a), t).unwrap().data,
                free.read(LineAddr::new(a), t).unwrap().data,
                "address {a} read back differently"
            );
        }
        let vm = verify.dewrite_metrics();
        let fm = free.dewrite_metrics();
        assert_eq!(vm.dup_eliminated, fm.dup_eliminated);
        assert_eq!(vm.assumed_dups, 0, "crc32-verify never assumes");
        assert_eq!(fm.assumed_dups, fm.dup_eliminated);
        verify.index().check_invariants().unwrap();
        free.index().check_invariants().unwrap();
    }

    #[test]
    fn verify_free_accounting_covers_every_elimination_without_reads() {
        // Accounting invariant of the verify-free commit path: every
        // eliminated write was an assumed duplicate, and the confirmation
        // loop never touched the array — no verify reads, no byte
        // compares, hence no observable false matches.
        let drive = |mode: DigestMode| {
            let mut m = DeWrite::new(
                SystemConfig::for_lines(2048),
                DeWriteConfig {
                    digest_mode: mode,
                    verify_buffer_entries: 0, // every confirm pays the read
                    ..DeWriteConfig::paper()
                },
                KEY,
            );
            let mut t = 0u64;
            for i in 0..400u64 {
                t += 5_000;
                m.write(LineAddr::new(i % 256), &line((i % 8) as u8), t)
                    .unwrap();
            }
            m
        };
        let free = drive(DigestMode::StrongKeyed);
        let fb = free.base_metrics();
        let fd = free.dewrite_metrics();
        assert!(fb.writes_eliminated > 0, "stream must contain duplicates");
        assert_eq!(fd.assumed_dups, fd.dup_eliminated);
        assert_eq!(fd.assumed_dups, fb.writes_eliminated);
        assert_eq!(fb.verify_reads, 0, "verify-free must never read to confirm");
        assert_eq!(fd.false_matches, 0);
        let verify = drive(DigestMode::Crc32Verify);
        assert_eq!(verify.dewrite_metrics().assumed_dups, 0);
        assert!(verify.base_metrics().verify_reads > 0);
    }

    #[test]
    fn write_through_keeps_no_dirty_metadata() {
        let mut cfg = DeWriteConfig::paper();
        cfg.persistence = crate::config::MetadataPersistence::WriteThrough;
        let mut m = DeWrite::new(SystemConfig::for_lines(1024), cfg, KEY);
        let mut t = 0;
        for i in 0..50u64 {
            let mut data = line(i as u8);
            data[0..8].copy_from_slice(&i.to_le_bytes());
            m.write(LineAddr::new(i), &data, t).unwrap();
            t += 5_000;
        }
        assert_eq!(
            m.dirty_metadata_entries(),
            0,
            "write-through must not buffer"
        );
        assert!(
            m.base_metrics().meta_nvm_writes > 50,
            "every update written through"
        );
    }

    #[test]
    fn epoch_flush_bounds_dirty_metadata() {
        let mut cfg = DeWriteConfig::paper();
        cfg.persistence = crate::config::MetadataPersistence::EpochFlush { interval: 8 };
        let mut m = DeWrite::new(SystemConfig::for_lines(1024), cfg, KEY);
        let mut t = 0;
        let mut max_dirty = 0;
        for i in 0..64u64 {
            let mut data = line(i as u8);
            data[0..8].copy_from_slice(&i.to_le_bytes());
            m.write(LineAddr::new(i), &data, t).unwrap();
            max_dirty = max_dirty.max(m.dirty_metadata_entries());
            t += 5_000;
        }
        // Each write dirties a handful of entries; 8 writes per epoch
        // bounds exposure to a few dozen entries.
        assert!(max_dirty <= 8 * 6, "max dirty {max_dirty}");
        assert!(m.base_metrics().meta_nvm_writes > 0);
    }

    #[test]
    fn battery_backed_buffers_freely() {
        let mut m = mem(); // default: battery-backed
        let mut t = 0;
        for i in 0..50u64 {
            let mut data = line(i as u8);
            data[0..8].copy_from_slice(&i.to_le_bytes());
            m.write(LineAddr::new(i), &data, t).unwrap();
            t += 5_000;
        }
        assert!(
            m.dirty_metadata_entries() > 0,
            "write-back keeps dirty entries"
        );
        // An explicit flush drains them all.
        let flushed = m.flush_metadata(t);
        assert!(flushed > 0);
        assert_eq!(m.dirty_metadata_entries(), 0);
    }

    #[test]
    fn scrub_passes_on_a_healthy_memory() {
        let mut m = mem();
        let dup = line(9);
        let mut t = 0;
        for i in 0..40u64 {
            let data = if i % 3 == 0 {
                dup.clone()
            } else {
                let mut d = line(i as u8);
                d[0..8].copy_from_slice(&i.to_le_bytes());
                d
            };
            m.write(LineAddr::new(i), &data, t).unwrap();
            t += 5_000;
        }
        let checked = m.scrub().expect("healthy memory scrubs clean");
        assert!(checked > 0);
    }

    #[test]
    fn scrub_detects_missing_counter() {
        let mut m = mem();
        m.write(LineAddr::new(3), &line(5), 0).unwrap();
        m.scrub().expect("clean before the fault");
        let real = m.index().resolve(LineAddr::new(3)).expect("written");
        // Simulate lost counter metadata (e.g. a crash before flush).
        m.counters.remove(&real.index());
        let err = m.scrub().expect_err("missing counter must fail the scrub");
        assert!(err.contains("no encryption counter"), "{err}");
    }

    #[test]
    fn duplicate_commit_touches_target_row() {
        let mut cfg = DeWriteConfig::paper();
        cfg.persistence = crate::config::MetadataPersistence::WriteThrough;
        let mut m = DeWrite::new(SystemConfig::for_lines(1024), cfg, KEY);
        let data = line(4);
        m.write(LineAddr::new(0), &data, 0).unwrap();
        let before = m.base_metrics().meta_nvm_writes;
        let w = m.write(LineAddr::new(1), &data, 10_000).unwrap();
        assert!(w.eliminated);
        let delta = m.base_metrics().meta_nvm_writes - before;
        // §III-C: a duplicate commit updates the address mapping, the hash
        // entry, AND the target's colocated row (its reference count).
        assert!(
            delta >= 3,
            "duplicate commit wrote only {delta} metadata lines"
        );
    }

    #[test]
    fn event_sink_sees_both_write_paths() {
        use crate::trace::{Stage, StageCollector};
        let mut m = mem();
        m.set_event_sink(Box::new(StageCollector::default()));
        let data = line(6);
        m.write(LineAddr::new(0), &data, 0).unwrap();
        m.write(LineAddr::new(1), &data, 50_000).unwrap(); // duplicate
        let mut sink = m.take_event_sink().expect("sink installed");
        let collector = sink
            .as_any_mut()
            .downcast_mut::<StageCollector>()
            .expect("collector type");
        let b = &collector.breakdown;
        assert_eq!(b.stored_writes, 1);
        assert_eq!(b.duplicate_writes, 1);
        assert_eq!(b.stage(Stage::Digest).count(), 2);
        assert_eq!(
            b.stage(Stage::ArrayWrite).count(),
            1,
            "only the store hits the array"
        );
        assert_eq!(b.stage(Stage::Metadata).count(), 2);
        assert!(b.stage(Stage::Digest).mean_ns() > 0.0);
        // Detection on the duplicate write did verify + compare work.
        assert!(b.stage(Stage::Compare).count() >= 1);
    }

    #[test]
    fn journal_replay_matches_snapshot() {
        // Replaying the drained MetaOps onto plain maps must reproduce the
        // exact durable state a snapshot captures — the property the WAL
        // recovery path depends on.
        let mut m = mem();
        m.set_meta_journal(true);
        let mut maps: HashMap<u64, u64> = HashMap::new();
        let mut residents: HashMap<u64, u64> = HashMap::new();
        let mut ctrs: HashMap<u64, u32> = HashMap::new();
        let dup = line(1);
        let mut t = 0;
        for i in 0..120u64 {
            let data = if i % 3 == 0 {
                dup.clone()
            } else {
                let mut d = line(i as u8);
                d[0..8].copy_from_slice(&i.to_le_bytes());
                d
            };
            // Reuse a small address range so overwrites, frees, and silent
            // stores all occur.
            m.write(LineAddr::new(i % 40), &data, t).unwrap();
            t += 5_000;
            for op in m.drain_meta_ops() {
                match op {
                    MetaOp::MapSet { init, real } => {
                        maps.insert(init, real);
                    }
                    MetaOp::ResidentSet { real, digest } => {
                        residents.insert(real, digest);
                    }
                    MetaOp::ResidentDel { real } => {
                        residents.remove(&real);
                    }
                    MetaOp::CounterSet { line, value } => {
                        ctrs.insert(line, value);
                    }
                }
            }
        }
        let snap = m.snapshot();
        assert_eq!(
            maps,
            snap.mappings.iter().copied().collect::<HashMap<_, _>>()
        );
        assert_eq!(
            residents,
            snap.residents.iter().copied().collect::<HashMap<_, _>>()
        );
        assert_eq!(
            ctrs,
            snap.counters.iter().copied().collect::<HashMap<_, _>>()
        );
    }

    #[test]
    fn journal_disabled_stays_empty() {
        let mut m = mem();
        m.write(LineAddr::new(0), &line(3), 0).unwrap();
        assert!(m.drain_meta_ops().is_empty());
        m.set_meta_journal(true);
        m.write(LineAddr::new(1), &line(4), 10_000).unwrap();
        assert!(!m.drain_meta_ops().is_empty());
        m.set_meta_journal(false);
        m.write(LineAddr::new(2), &line(5), 20_000).unwrap();
        assert!(m.drain_meta_ops().is_empty());
    }

    #[test]
    fn scrub_detects_injected_corruption() {
        let mut m = mem();
        let data = line(5);
        m.write(LineAddr::new(3), &data, 0).unwrap();
        m.scrub().expect("clean before corruption");
        let real = m.index().resolve(LineAddr::new(3)).expect("written");
        m.inject_corruption(real);
        let err = m.scrub().expect_err("corruption must be detected");
        assert!(err.contains("hashes to"), "{err}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn random_workload_preserves_contents(
            ops in proptest::collection::vec((0u64..64, 0u8..8), 1..120),
        ) {
            let mut m = mem();
            let mut shadow: std::collections::HashMap<u64, Vec<u8>> = Default::default();
            let mut t = 0;
            for (addr, tag) in ops {
                // Small tag space forces heavy duplication.
                let data = line(tag);
                m.write(LineAddr::new(addr), &data, t).unwrap();
                shadow.insert(addr, data);
                t += 7_000;
            }
            m.index().check_invariants().unwrap();
            for (addr, expect) in shadow {
                let got = m.read(LineAddr::new(addr), t).unwrap().data;
                prop_assert_eq!(got, expect);
                t += 1_000;
            }
        }
    }
}
