//! The on-chip metadata cache.
//!
//! Secure-NVMM proposals keep a write-back cache of per-line counters in the
//! memory controller; DeWrite reuses it for all deduplication metadata
//! (§III-B). This is a set-associative, write-back cache over abstract
//! 64-bit entry keys — callers namespace keys per table — with LRU, FIFO,
//! or scan-resistant S3-FIFO replacement and support for the
//! sequential-prefetch insertions the address-mapping / inverted-hash / FSM
//! tables rely on (Fig. 21 sweeps both capacity and prefetch granularity).
//!
//! # Memory layout
//!
//! The cache sits on every simulated memory access, so it is flat arrays
//! rather than per-set heap `Vec`s: one interleaved `{key, stamp}` entry
//! (a hit reads the key and re-stamps recency in one cache line) and one
//! flag byte (valid + dirty bits) per way, all indexed
//! `set * associativity + way`. Nothing allocates after
//! [`MetadataCache::new`]. A one-byte tag
//! sidecar (a 7-bit hash of the key per way, `0x80` for a never-used way)
//! fronts every set scan: a whole set's tags are matched with one u64 SWAR
//! compare, so a lookup touches 8 bytes instead of 64 and full keys are
//! only compared on tag hits. SWAR false positives and empty lanes are
//! filtered by an exact byte compare from the word already in register, so
//! the scan is exact on every platform — no portable fallback is needed
//! (the few SWAR lines are duplicated from the core table scan; this crate
//! is dependency-free, like the portable switch duplicated between
//! `dewrite-hashes` and `dewrite-crypto`). LRU/FIFO replacement is
//! behaviorally identical to the seed per-set-`Vec` implementation (kept as
//! an oracle in [`crate::seed`]): victims are chosen by unique minimum
//! stamp, so set-internal storage order was never observable.
//!
//! # S3-FIFO over the same flat arrays
//!
//! [`Replacement::S3Fifo`] adds scan resistance without a second layout.
//! The small/main queues are **per set** and virtual: queue membership is
//! one flag bit and the 2-bit hit frequency lives in the same flag byte,
//! while FIFO order within each queue reuses the monotonic `stamp` that LRU
//! already maintains (minimum stamp = queue head, re-stamping = move to
//! tail). The ghost queue is a per-set ring of 16-bit key fingerprints —
//! no payload, one `u16` per way — consulted only on the insert (miss-fill)
//! path, so the hit path stays the same few loads as LRU. Eviction prefers
//! the small queue while it exceeds ~assoc/8 ways: an entry that was hit
//! while in small is promoted to the main tail, an unhit one is evicted and
//! only its fingerprint is remembered; a key whose fingerprint is still in
//! the ghost ring re-inserts directly into main. Main evicts its head too,
//! but re-queues entries whose frequency is nonzero (decrementing it), so
//! repeatedly-hit entries survive long sequential sweeps that flush an LRU
//! set end to end.

/// Replacement policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Replacement {
    /// Least-recently-used (the paper's choice).
    #[default]
    Lru,
    /// First-in-first-out (ablation alternative).
    Fifo,
    /// Scan-resistant S3-FIFO (small/main/ghost queues, frequency-capped
    /// promotion) per set, over the same flat arrays.
    S3Fifo,
}

impl Replacement {
    /// All policies, in presentation order (useful for sweeps).
    pub const ALL: [Replacement; 3] = [Replacement::Lru, Replacement::Fifo, Replacement::S3Fifo];

    /// Stable one-byte wire/JSON encoding.
    pub fn to_wire(self) -> u8 {
        match self {
            Replacement::Lru => 0,
            Replacement::Fifo => 1,
            Replacement::S3Fifo => 2,
        }
    }

    /// Decode [`Self::to_wire`]'s byte; `None` for unknown values.
    pub fn from_wire(v: u8) -> Option<Replacement> {
        Some(match v {
            0 => Replacement::Lru,
            1 => Replacement::Fifo,
            2 => Replacement::S3Fifo,
            _ => return None,
        })
    }
}

impl std::fmt::Display for Replacement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Replacement::Lru => "lru",
            Replacement::Fifo => "fifo",
            Replacement::S3Fifo => "s3-fifo",
        })
    }
}

impl std::str::FromStr for Replacement {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Ok(match s {
            "lru" => Replacement::Lru,
            "fifo" => Replacement::Fifo,
            "s3-fifo" | "s3fifo" => Replacement::S3Fifo,
            other => return Err(format!("unknown cache policy {other:?}")),
        })
    }
}

/// Cache geometry and policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in entries.
    pub capacity: usize,
    /// Ways per set.
    pub associativity: usize,
    /// Replacement policy.
    pub replacement: Replacement,
}

impl CacheConfig {
    /// A capacity-`n` cache with 8-way sets and LRU replacement.
    pub fn with_capacity(n: usize) -> Self {
        CacheConfig {
            capacity: n,
            associativity: 8,
            replacement: Replacement::Lru,
        }
    }

    /// Number of sets.
    fn num_sets(&self) -> usize {
        (self.capacity / self.associativity).max(1)
    }
}

/// Hit/miss accounting.
///
/// The `small_hits`/`main_hits`/`ghost_hits`/`scan_evictions` fields are
/// only nonzero under [`Replacement::S3Fifo`]; under that policy
/// `hits == small_hits + main_hits` always holds, so `hit_rate` means the
/// same thing for every policy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand lookups that hit.
    pub hits: u64,
    /// Demand lookups that missed.
    pub misses: u64,
    /// Entries inserted on demand.
    pub demand_inserts: u64,
    /// Entries inserted by prefetch.
    pub prefetch_inserts: u64,
    /// Dirty entries evicted (these become NVM metadata writes).
    pub dirty_evictions: u64,
    /// S3-FIFO: demand hits on entries in the small (probation) queue.
    pub small_hits: u64,
    /// S3-FIFO: demand hits on entries in the main queue.
    pub main_hits: u64,
    /// S3-FIFO: inserts whose fingerprint was found in the ghost ring
    /// (re-admitted straight to main).
    pub ghost_hits: u64,
    /// S3-FIFO: evictions from the small queue without promotion — the
    /// one-hit-wonder scan traffic the policy filtered out of main.
    pub scan_evictions: u64,
}

impl CacheStats {
    /// Demand hit rate in `[0, 1]`; zero if no lookups.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// An entry evicted from the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    /// The evicted key.
    pub key: u64,
    /// Whether it was dirty (must be written back to NVM).
    pub dirty: bool,
}

/// Way flag bit: slot holds an entry.
const FLAG_VALID: u8 = 1 << 0;
/// Way flag bit: entry differs from NVM (write-back pending).
const FLAG_DIRTY: u8 = 1 << 1;
/// Way flag bit (S3-FIFO only): entry is in the small (probation) queue.
const FLAG_SMALL: u8 = 1 << 2;
/// S3-FIFO hit-frequency counter: 2 bits of the same flag byte.
const FREQ_SHIFT: u32 = 3;
const FREQ_MASK: u8 = 0b11 << FREQ_SHIFT;
const FREQ_MAX: u8 = 3;

/// The frequency counter packed into a flag byte.
#[inline]
fn freq_of(flag: u8) -> u8 {
    (flag & FREQ_MASK) >> FREQ_SHIFT
}

/// `flag` with its frequency counter incremented, saturating at
/// [`FREQ_MAX`].
#[inline]
fn freq_bumped(flag: u8) -> u8 {
    if freq_of(flag) < FREQ_MAX {
        flag + (1 << FREQ_SHIFT)
    } else {
        flag
    }
}

const SWAR_LO: u64 = 0x0101_0101_0101_0101;
const SWAR_HI: u64 = 0x8080_8080_8080_8080;
/// A tag word of eight never-used lanes (`0x80` per byte — the high bit is
/// never set in a valid 7-bit tag, so empty lanes never match).
const TAG_EMPTY_WORD: u64 = SWAR_HI;

/// Per-lane hit bits (at bit `8k + 7`) for bytes of `word` equal to `tag`,
/// via the SWAR zero-byte trick. Lanes above a true match may be false
/// positives; callers verify every candidate lane exactly.
#[inline]
fn swar_match_lanes(word: u64, tag: u8) -> u64 {
    let x = word ^ (SWAR_LO.wrapping_mul(u64::from(tag)));
    x.wrapping_sub(SWAR_LO) & !x & SWAR_HI
}

/// One way's key and recency stamp, interleaved so the common LRU hit
/// (compare key, refresh stamp) touches a single cache line instead of
/// one line in a key array plus one in a stamp array.
#[derive(Debug, Clone, Copy)]
struct Way {
    key: u64,
    /// Recency/insertion stamp. Stamps come from a strictly monotonic
    /// clock, so the eviction minimum is always unique.
    stamp: u64,
}

/// Set-associative write-back metadata cache.
///
/// ```
/// use dewrite_mem::{CacheConfig, MetadataCache};
///
/// let mut cache = MetadataCache::new(CacheConfig::with_capacity(64));
/// assert!(!cache.access(7, false));      // cold miss
/// cache.insert(7, false);
/// assert!(cache.access(7, true));        // hit, now dirty
/// assert_eq!(cache.stats().hits, 1);
/// ```
#[derive(Debug, Clone)]
pub struct MetadataCache {
    config: CacheConfig,
    /// Way key/stamp pairs, indexed `set * associativity + way`.
    ways: Box<[Way]>,
    /// Valid/dirty flag bytes, same indexing.
    flags: Box<[u8]>,
    /// One-byte key tags, eight lanes per u64 word, `tag_words` words per
    /// set (lanes past the associativity are permanently `0x80`). A way is
    /// valid iff its tag lane's high bit is clear — tags are written
    /// exactly when a way is (re)filled and ways are never invalidated.
    tags: Box<[u64]>,
    /// Tag words per set: `associativity.div_ceil(8)`.
    tag_words: usize,
    num_sets: usize,
    /// S3-FIFO only (empty otherwise): per-set rings of ghost-queue key
    /// fingerprints, `associativity` lanes per set, `0` = empty lane.
    /// Fingerprints only — the ghost never holds a payload.
    ghosts: Box<[u16]>,
    /// S3-FIFO only: per-set ghost ring write cursors.
    ghost_cursor: Box<[u16]>,
    /// S3-FIFO only: ways per set the small queue may occupy before
    /// eviction drains it (~1/8 of the set, at least one way).
    small_target: usize,
    len: usize,
    clock: u64,
    stats: CacheStats,
}

impl MetadataCache {
    /// Create an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if capacity or associativity is zero.
    pub fn new(config: CacheConfig) -> Self {
        assert!(config.capacity > 0, "cache capacity must be nonzero");
        assert!(config.associativity > 0, "associativity must be nonzero");
        let num_sets = config.num_sets();
        let slots = num_sets * config.associativity;
        let tag_words = config.associativity.div_ceil(8);
        let s3 = config.replacement == Replacement::S3Fifo;
        MetadataCache {
            config,
            ways: vec![Way { key: 0, stamp: 0 }; slots].into_boxed_slice(),
            flags: vec![0u8; slots].into_boxed_slice(),
            tags: vec![TAG_EMPTY_WORD; num_sets * tag_words].into_boxed_slice(),
            tag_words,
            num_sets,
            ghosts: vec![0u16; if s3 { slots } else { 0 }].into_boxed_slice(),
            ghost_cursor: vec![0u16; if s3 { num_sets } else { 0 }].into_boxed_slice(),
            small_target: (config.associativity / 8).max(1),
            len: 0,
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Multiplicative hashing spreads sequential keys across sets while
    /// staying deterministic. Bits 32.. pick the set; bits 57.. are the
    /// 7-bit way tag.
    #[inline]
    fn hash(key: u64) -> u64 {
        key.wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }

    /// `(h >> 32) % num_sets`, with the modulo strength-reduced to a mask
    /// for power-of-two set counts (the common geometry — a runtime `div`
    /// costs more than the whole tag scan).
    #[inline]
    fn reduce_set(h: u64, num_sets: usize) -> usize {
        let idx = (h >> 32) as usize;
        if num_sets.is_power_of_two() {
            idx & (num_sets - 1)
        } else {
            idx % num_sets
        }
    }

    /// Slot index of `key` within its set, if resident: one SWAR tag-word
    /// compare per eight ways, full key compare only on tag hits. Keys are
    /// unique within a set, so any match is the match.
    #[inline]
    fn find(&self, key: u64) -> Option<usize> {
        let h = Self::hash(key);
        let set = Self::reduce_set(h, self.num_sets);
        let tag = (h >> 57) as u8;
        let base = set * self.config.associativity;
        let tag_base = set * self.tag_words;
        let words = &self.tags[tag_base..tag_base + self.tag_words];
        for (w, &word) in words.iter().enumerate() {
            let mut hits = swar_match_lanes(word, tag);
            while hits != 0 {
                let lane = (hits.trailing_zeros() >> 3) as usize;
                hits &= hits - 1;
                // Exact byte compare from the word already in register
                // filters SWAR false positives, empty lanes, and padding.
                if (word >> (lane * 8)) as u8 == tag {
                    let slot = base + w * 8 + lane;
                    if self.ways[slot].key == key {
                        return Some(slot);
                    }
                }
            }
        }
        None
    }

    /// Write `way`'s one-byte tag lane within its set's tag words.
    #[inline]
    fn set_tag(&mut self, set: usize, way: usize, tag: u8) {
        let word = &mut self.tags[set * self.tag_words + way / 8];
        let shift = (way % 8) * 8;
        *word = (*word & !(0xFF_u64 << shift)) | (u64::from(tag) << shift);
    }

    /// Demand lookup. On a hit, refreshes the policy's reuse signal —
    /// recency under LRU, the capped frequency counter under S3-FIFO,
    /// nothing under FIFO — and ORs in the `write` dirty bit. Returns
    /// whether it hit.
    #[inline]
    pub fn access(&mut self, key: u64, write: bool) -> bool {
        self.clock += 1;
        if let Some(slot) = self.find(key) {
            match self.config.replacement {
                Replacement::Lru => self.ways[slot].stamp = self.clock,
                Replacement::Fifo => {}
                Replacement::S3Fifo => {
                    let flag = self.flags[slot];
                    if flag & FLAG_SMALL != 0 {
                        self.stats.small_hits += 1;
                    } else {
                        self.stats.main_hits += 1;
                    }
                    self.flags[slot] = freq_bumped(flag);
                }
            }
            if write {
                self.flags[slot] |= FLAG_DIRTY;
            }
            self.stats.hits += 1;
            true
        } else {
            self.stats.misses += 1;
            false
        }
    }

    /// Whether `key` is resident (no statistics side effects).
    #[inline]
    pub fn contains(&self, key: u64) -> bool {
        self.find(key).is_some()
    }

    /// Insert `key` (demand fill). Returns the victim if one was evicted.
    #[inline]
    pub fn insert(&mut self, key: u64, dirty: bool) -> Option<Evicted> {
        self.stats.demand_inserts += 1;
        self.insert_inner(key, dirty)
    }

    /// Insert a run of `count` sequential keys starting at `start`
    /// (prefetch fill; entries arrive clean). The run stops at the top of
    /// the key space instead of wrapping. Keys already resident get a
    /// policy-aware touch (LRU re-stamp / S3-FIFO frequency bump) with no
    /// hit/miss accounting, so a prefetch over a warm run refreshes the
    /// same reuse signal under every policy. Returns the number of dirty
    /// victims evicted.
    pub fn prefetch_run(&mut self, start: u64, count: usize) -> u64 {
        let mut dirty_victims = 0;
        for k in 0..count as u64 {
            let Some(key) = start.checked_add(k) else {
                break;
            };
            if let Some(slot) = self.find(key) {
                match self.config.replacement {
                    Replacement::Lru => {
                        self.clock += 1;
                        self.ways[slot].stamp = self.clock;
                    }
                    Replacement::Fifo => {}
                    Replacement::S3Fifo => self.flags[slot] = freq_bumped(self.flags[slot]),
                }
            } else {
                self.stats.prefetch_inserts += 1;
                if let Some(ev) = self.insert_inner(key, false) {
                    if ev.dirty {
                        dirty_victims += 1;
                    }
                }
            }
        }
        dirty_victims
    }

    fn insert_inner(&mut self, key: u64, dirty: bool) -> Option<Evicted> {
        self.clock += 1;
        let clock = self.clock;
        let h = Self::hash(key);
        let set = Self::reduce_set(h, self.num_sets);
        let tag = (h >> 57) as u8;
        let assoc = self.config.associativity;
        let base = set * assoc;
        let s3 = self.config.replacement == Replacement::S3Fifo;

        if let Some(slot) = self.find(key) {
            // Already resident: update in place, refreshing the policy's
            // reuse signal like a hit would.
            if dirty {
                self.flags[slot] |= FLAG_DIRTY;
            }
            if s3 {
                self.flags[slot] = freq_bumped(self.flags[slot]);
            } else {
                self.ways[slot].stamp = clock;
            }
            return None;
        }

        // S3-FIFO routes a fill whose fingerprint is still remembered in
        // the ghost ring straight to main; everything else starts in small.
        let mut new_flag = FLAG_VALID | if dirty { FLAG_DIRTY } else { 0 };
        if s3 {
            if self.ghost_take(set, Self::fingerprint(h)) {
                self.stats.ghost_hits += 1;
            } else {
                new_flag |= FLAG_SMALL;
            }
        }

        // First never-used way, if any (high tag-lane bit). Padding lanes
        // are permanently 0x80, but they sit above every real way of the
        // last word, so real free lanes are found first.
        let mut empty: Option<usize> = None;
        'scan: for w in 0..self.tag_words {
            let mut free = self.tags[set * self.tag_words + w] & SWAR_HI;
            while free != 0 {
                let way = w * 8 + (free.trailing_zeros() >> 3) as usize;
                free &= free - 1;
                if way < assoc {
                    empty = Some(way);
                    break 'scan;
                }
            }
        }

        let (way, evicted) = match empty {
            Some(way) => {
                self.len += 1;
                (way, None)
            }
            None => {
                // No empty way means every way is valid; pick the victim by
                // policy. LRU/FIFO: the (unique) smallest stamp — last touch
                // under LRU, insertion time under FIFO (stamps are only
                // refreshed under LRU). S3-FIFO: drain the queues.
                let victim = if s3 {
                    self.s3_evict(set)
                } else {
                    let mut victim = base;
                    for slot in base + 1..base + assoc {
                        if self.ways[slot].stamp < self.ways[victim].stamp {
                            victim = slot;
                        }
                    }
                    victim
                };
                let was_dirty = self.flags[victim] & FLAG_DIRTY != 0;
                if was_dirty {
                    self.stats.dirty_evictions += 1;
                }
                (
                    victim - base,
                    Some(Evicted {
                        key: self.ways[victim].key,
                        dirty: was_dirty,
                    }),
                )
            }
        };
        let slot = base + way;
        // The new entry joins the tail of its queue: promotions inside
        // `s3_evict` may have advanced the clock past `clock`, so take a
        // fresh stamp (still strictly monotonic).
        self.clock += 1;
        self.ways[slot] = Way {
            key,
            stamp: self.clock,
        };
        self.flags[slot] = new_flag;
        self.set_tag(set, way, tag);
        evicted
    }

    /// Pick the S3-FIFO victim slot in a full `set`, promoting and
    /// re-queueing along the way.
    ///
    /// Terminates: every iteration either returns, moves a way out of the
    /// small queue, or decrements a (bounded) frequency counter — at most
    /// `assoc * (FREQ_MAX + 1)` iterations before a zero-frequency head is
    /// found.
    fn s3_evict(&mut self, set: usize) -> usize {
        let assoc = self.config.associativity;
        let base = set * assoc;
        loop {
            // One pass over the set: small occupancy plus each queue's
            // head (minimum stamp). Eviction is the rare path; the scan is
            // at most `assoc` flag bytes and stamps.
            let mut small_count = 0usize;
            let mut small_head: Option<usize> = None;
            let mut main_head: Option<usize> = None;
            for slot in base..base + assoc {
                if self.flags[slot] & FLAG_SMALL != 0 {
                    small_count += 1;
                    if small_head.is_none_or(|m| self.ways[slot].stamp < self.ways[m].stamp) {
                        small_head = Some(slot);
                    }
                } else if main_head.is_none_or(|m| self.ways[slot].stamp < self.ways[m].stamp) {
                    main_head = Some(slot);
                }
            }
            if small_count > self.small_target || main_head.is_none() {
                let slot = small_head.expect("full set has a small way here");
                if freq_of(self.flags[slot]) >= 1 {
                    // Hit while on probation: promote to the main tail.
                    // Frequency restarts at zero so one early burst does
                    // not grant immortality in main.
                    self.flags[slot] &= !(FLAG_SMALL | FREQ_MASK);
                    self.clock += 1;
                    self.ways[slot].stamp = self.clock;
                    continue;
                }
                // One-hit wonder: evict, remembering only the fingerprint.
                let fp = Self::fingerprint(Self::hash(self.ways[slot].key));
                self.ghost_push(set, fp);
                self.stats.scan_evictions += 1;
                return slot;
            }
            let slot = main_head.expect("full set has a main way here");
            if freq_of(self.flags[slot]) > 0 {
                // Still hot: spend one frequency unit for another lap.
                self.flags[slot] -= 1 << FREQ_SHIFT;
                self.clock += 1;
                self.ways[slot].stamp = self.clock;
                continue;
            }
            return slot;
        }
    }

    /// 16-bit ghost fingerprint of a key hash. `0` marks an empty ghost
    /// lane, so the zero fingerprint is folded to 1 (a 2⁻¹⁶ bias, far below
    /// the ring's ambient false-positive rate).
    #[inline]
    fn fingerprint(h: u64) -> u16 {
        let fp = (h >> 48) as u16;
        if fp == 0 {
            1
        } else {
            fp
        }
    }

    /// Remove `fp` from `set`'s ghost ring if present.
    fn ghost_take(&mut self, set: usize, fp: u16) -> bool {
        let assoc = self.config.associativity;
        let base = set * assoc;
        for lane in &mut self.ghosts[base..base + assoc] {
            if *lane == fp {
                *lane = 0;
                return true;
            }
        }
        false
    }

    /// Append `fp` to `set`'s ghost ring, displacing the oldest entry.
    fn ghost_push(&mut self, set: usize, fp: u16) {
        let assoc = self.config.associativity;
        let cur = usize::from(self.ghost_cursor[set]);
        self.ghosts[set * assoc + cur] = fp;
        self.ghost_cursor[set] = ((cur + 1) % assoc) as u16;
    }

    /// Clear every dirty bit, returning how many entries were dirty —
    /// the write-backs a flush (epoch persistence) must perform.
    pub fn flush_dirty(&mut self) -> u64 {
        let mut flushed = 0;
        for flag in self.flags.iter_mut() {
            if *flag & (FLAG_VALID | FLAG_DIRTY) == FLAG_VALID | FLAG_DIRTY {
                *flag &= !FLAG_DIRTY;
                flushed += 1;
            }
        }
        flushed
    }

    /// Number of currently dirty entries.
    pub fn dirty_count(&self) -> u64 {
        self.flags
            .iter()
            .filter(|&&f| f & (FLAG_VALID | FLAG_DIRTY) == FLAG_VALID | FLAG_DIRTY)
            .count() as u64
    }

    /// Current statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn small(assoc: usize, capacity: usize) -> MetadataCache {
        MetadataCache::new(CacheConfig {
            capacity,
            associativity: assoc,
            replacement: Replacement::Lru,
        })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small(2, 4);
        assert!(!c.access(1, false));
        c.insert(1, false);
        assert!(c.access(1, false));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
        assert!((c.stats().hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn write_access_marks_dirty_and_eviction_reports_it() {
        // Fully-associative single set of 2.
        let mut c = small(2, 2);
        c.insert(1, false);
        assert!(c.access(1, true)); // dirtied by write hit
        c.insert(2, false);
        // Force eviction of 1 (LRU: 1 was touched before 2's insert).
        let mut victims = Vec::new();
        for k in 3..100 {
            if let Some(v) = c.insert(k, false) {
                victims.push(v);
            }
        }
        assert!(victims.iter().any(|v| v.key == 1 && v.dirty));
        assert!(c.stats().dirty_evictions >= 1);
    }

    #[test]
    fn lru_keeps_recently_used() {
        let mut c = small(2, 2); // one set, two ways
        c.insert(1, false);
        c.insert(2, false);
        assert!(c.access(1, false)); // 1 is now MRU
        let v = c.insert(3, false).expect("full set evicts");
        assert_eq!(v.key, 2);
        assert!(c.contains(1));
        assert!(c.contains(3));
    }

    #[test]
    fn fifo_ignores_recency() {
        let mut c = MetadataCache::new(CacheConfig {
            capacity: 2,
            associativity: 2,
            replacement: Replacement::Fifo,
        });
        c.insert(1, false);
        c.insert(2, false);
        assert!(c.access(1, false)); // touch does not refresh under FIFO
        let v = c.insert(3, false).expect("full set evicts");
        assert_eq!(v.key, 1, "FIFO evicts the oldest insertion");
    }

    #[test]
    fn reinsert_updates_in_place() {
        let mut c = small(2, 2);
        c.insert(1, false);
        assert!(c.insert(1, true).is_none());
        assert_eq!(c.len(), 1);
        // The single entry must now be dirty: evict it and check.
        c.insert(2, false);
        let v = c.insert(3, false).unwrap();
        assert!(v.key == 1 && v.dirty);
    }

    #[test]
    fn prefetch_inserts_clean_and_counts() {
        let mut c = small(4, 64);
        let dirty = c.prefetch_run(100, 16);
        assert_eq!(dirty, 0);
        assert_eq!(c.stats().prefetch_inserts, 16);
        assert!(c.access(100, false));
        assert!(c.access(115, false));
    }

    #[test]
    fn prefetch_skips_resident_keys() {
        let mut c = small(4, 64);
        c.insert(100, true);
        c.prefetch_run(100, 4);
        assert_eq!(c.stats().prefetch_inserts, 3);
        // Resident dirty entry must keep its dirty bit.
        assert!(c.contains(100));
    }

    #[test]
    fn prefetch_stops_at_top_of_key_space() {
        // A run starting near u64::MAX must clamp, not wrap or overflow:
        // only the 3 representable keys are inserted.
        let mut c = small(4, 64);
        let dirty = c.prefetch_run(u64::MAX - 2, 10);
        assert_eq!(dirty, 0);
        assert_eq!(c.stats().prefetch_inserts, 3);
        assert!(c.contains(u64::MAX - 2));
        assert!(c.contains(u64::MAX - 1));
        assert!(c.contains(u64::MAX));
        assert!(!c.contains(0), "the run must not wrap around");
        assert_eq!(c.len(), 3);
    }

    #[test]
    #[should_panic(expected = "capacity must be nonzero")]
    fn zero_capacity_rejected() {
        let _ = MetadataCache::new(CacheConfig::with_capacity(0));
    }

    #[test]
    fn flush_clears_all_dirty_bits() {
        let mut c = small(4, 32);
        c.insert(1, true);
        c.insert(2, false);
        c.insert(3, true);
        assert_eq!(c.dirty_count(), 2);
        assert_eq!(c.flush_dirty(), 2);
        assert_eq!(c.dirty_count(), 0);
        assert_eq!(c.flush_dirty(), 0);
        // Entries remain resident after a flush.
        assert!(c.contains(1) && c.contains(2) && c.contains(3));
        // A flushed entry evicts clean.
        for k in 10..200 {
            c.insert(k, false);
        }
        assert_eq!(c.stats().dirty_evictions, 0);
    }

    #[test]
    fn bigger_cache_hits_more_on_looping_scan() {
        // Scan a 512-entry loop through a 128-entry and a 1024-entry cache.
        let run = |capacity: usize| {
            let mut c = MetadataCache::new(CacheConfig::with_capacity(capacity));
            for round in 0..4 {
                for k in 0..512u64 {
                    if !c.access(k, false) {
                        c.insert(k, false);
                    }
                    let _ = round;
                }
            }
            c.stats().hit_rate()
        };
        assert!(run(1024) > run(128));
        assert!(run(1024) > 0.7, "loop fits: expect high hit rate");
    }

    fn s3(assoc: usize, capacity: usize) -> MetadataCache {
        MetadataCache::new(CacheConfig {
            capacity,
            associativity: assoc,
            replacement: Replacement::S3Fifo,
        })
    }

    #[test]
    fn policy_names_round_trip() {
        for p in Replacement::ALL {
            assert_eq!(p.to_string().parse::<Replacement>(), Ok(p));
            assert_eq!(Replacement::from_wire(p.to_wire()), Some(p));
        }
        assert_eq!("s3fifo".parse::<Replacement>(), Ok(Replacement::S3Fifo));
        assert!("clock".parse::<Replacement>().is_err());
        assert_eq!(Replacement::from_wire(9), None);
    }

    #[test]
    fn s3fifo_scan_does_not_evict_hot_main_entries() {
        // One 8-way set. Four hot keys, each hit once while on probation,
        // then a 100-key one-shot sweep. S3-FIFO promotes the hot keys and
        // filters the sweep through small; LRU loses them.
        let hot: Vec<u64> = (1000..1004).collect();
        let run = |mut c: MetadataCache| {
            for &k in &hot {
                c.insert(k, false);
            }
            for &k in &hot {
                assert!(c.access(k, false));
            }
            for k in 0..100u64 {
                if !c.access(k, false) {
                    c.insert(k, false);
                }
            }
            c
        };
        let s3c = run(s3(8, 8));
        assert!(hot.iter().all(|&k| s3c.contains(k)), "hot set survives");
        assert!(s3c.stats().scan_evictions > 50, "sweep filtered via small");
        assert_eq!(s3c.stats().small_hits, 4);
        let lru = run(small(8, 8));
        assert!(
            hot.iter().all(|&k| !lru.contains(k)),
            "LRU loses the hot set"
        );
    }

    #[test]
    fn s3fifo_ghost_readmits_to_main() {
        let mut c = s3(8, 8);
        c.insert(42, false);
        // Fill the set and push one more: 42 (small head, never hit) is
        // evicted and only its fingerprint is remembered.
        for k in 0..8u64 {
            c.insert(k, false);
        }
        assert!(!c.contains(42));
        assert_eq!(c.stats().scan_evictions, 1);
        // Re-inserting while the fingerprint is live lands in main…
        c.insert(42, false);
        assert_eq!(c.stats().ghost_hits, 1);
        // …where a long sweep cannot dislodge it, even with zero hits.
        for k in 100..200u64 {
            c.insert(k, false);
        }
        assert!(c.contains(42), "ghost-readmitted entry rides out the sweep");
    }

    #[test]
    fn s3fifo_hits_split_by_queue() {
        let mut c = s3(8, 8);
        c.insert(7, false);
        assert!(c.access(7, false)); // probation hit
        assert_eq!(c.stats().small_hits, 1);
        assert_eq!(c.stats().main_hits, 0);
        // Promote 7 by sweeping, then hit it again in main.
        for k in 100..132u64 {
            c.insert(k, false);
        }
        assert!(c.contains(7));
        assert!(c.access(7, false));
        assert_eq!(c.stats().main_hits, 1);
        assert_eq!(c.stats().hits, c.stats().small_hits + c.stats().main_hits);
    }

    #[test]
    fn s3fifo_dirty_eviction_still_reported() {
        let mut c = s3(2, 2);
        c.insert(1, true);
        let mut dirty_victims = 0;
        for k in 2..50u64 {
            if let Some(v) = c.insert(k, false) {
                if v.dirty {
                    dirty_victims += 1;
                    assert_eq!(v.key, 1);
                }
            }
        }
        assert_eq!(dirty_victims, 1);
        assert_eq!(c.stats().dirty_evictions, 1);
    }

    // ---- satellite: policy-aware prefetch touch boundary tests ---------

    #[test]
    fn prefetch_touch_refreshes_lru_residents() {
        let mut c = small(2, 2);
        c.insert(1, false);
        c.insert(2, false);
        // The touch is not an insert (no stats) but must refresh recency.
        c.prefetch_run(1, 1);
        assert_eq!(c.stats().prefetch_inserts, 0);
        let v = c.insert(3, false).expect("full set evicts");
        assert_eq!(v.key, 2, "prefetch touch made 1 the MRU");
        assert!(c.contains(1));
    }

    #[test]
    fn prefetch_touch_bumps_s3fifo_frequency() {
        let mut c = s3(4, 4);
        c.insert(77, false);
        c.prefetch_run(77, 1); // resident: frequency bump, no insert
        assert_eq!(c.stats().prefetch_inserts, 0);
        for k in 0..40u64 {
            c.insert(k, false);
        }
        assert!(c.contains(77), "touched entry was promoted, not swept");
        // The same script without the touch loses the entry.
        let mut c = s3(4, 4);
        c.insert(77, false);
        for k in 0..40u64 {
            c.insert(k, false);
        }
        assert!(!c.contains(77));
    }

    #[test]
    fn prefetch_touch_ignores_fifo() {
        let mut c = MetadataCache::new(CacheConfig {
            capacity: 2,
            associativity: 2,
            replacement: Replacement::Fifo,
        });
        c.insert(1, false);
        c.insert(2, false);
        c.prefetch_run(1, 1);
        let v = c.insert(3, false).expect("full set evicts");
        assert_eq!(v.key, 1, "FIFO order is insertion order, touch or not");
    }

    // ---- differential proptests vs the seed per-set-Vec oracle ---------

    /// One randomized cache op.
    #[derive(Debug, Clone)]
    enum CacheOp {
        Access(u64, bool),
        Insert(u64, bool),
        Prefetch(u64, usize),
        Flush,
    }

    fn cache_op_strategy() -> impl Strategy<Value = CacheOp> {
        // A small key space plus a few near-u64::MAX keys keeps sets
        // contended and exercises the prefetch clamp.
        fn key() -> impl Strategy<Value = u64> {
            prop_oneof![0u64..48, Just(u64::MAX - 1), Just(u64::MAX)]
        }
        prop_oneof![
            (key(), any::<bool>()).prop_map(|(k, w)| CacheOp::Access(k, w)),
            (key(), any::<bool>()).prop_map(|(k, d)| CacheOp::Insert(k, d)),
            (key(), 0usize..12).prop_map(|(k, n)| CacheOp::Prefetch(k, n)),
            Just(CacheOp::Flush),
        ]
    }

    fn assert_caches_agree(
        seed: &crate::seed::SeedMetadataCache,
        flat: &MetadataCache,
        keys: &[u64],
    ) {
        assert_eq!(seed.stats(), flat.stats());
        assert_eq!(seed.len(), flat.len());
        assert_eq!(seed.is_empty(), flat.is_empty());
        assert_eq!(seed.dirty_count(), flat.dirty_count());
        for &k in keys {
            assert_eq!(seed.contains(k), flat.contains(k), "residency of {k}");
        }
    }

    fn run_differential(config: CacheConfig, ops: Vec<CacheOp>) {
        let mut seed = crate::seed::SeedMetadataCache::new(config);
        let mut flat = MetadataCache::new(config);
        let probe: Vec<u64> = (0..48).chain([u64::MAX - 1, u64::MAX]).collect();
        for op in ops {
            match op {
                CacheOp::Access(k, w) => assert_eq!(seed.access(k, w), flat.access(k, w)),
                CacheOp::Insert(k, d) => assert_eq!(seed.insert(k, d), flat.insert(k, d)),
                CacheOp::Prefetch(k, n) => {
                    assert_eq!(seed.prefetch_run(k, n), flat.prefetch_run(k, n));
                }
                CacheOp::Flush => assert_eq!(seed.flush_dirty(), flat.flush_dirty()),
            }
            assert_caches_agree(&seed, &flat, &probe);
        }
    }

    proptest! {
        #[test]
        fn lru_cache_matches_seed_oracle(
            ops in proptest::collection::vec(cache_op_strategy(), 0..250)
        ) {
            run_differential(
                CacheConfig { capacity: 16, associativity: 4, replacement: Replacement::Lru },
                ops,
            );
        }

        #[test]
        fn fifo_cache_matches_seed_oracle(
            ops in proptest::collection::vec(cache_op_strategy(), 0..250)
        ) {
            run_differential(
                CacheConfig { capacity: 8, associativity: 2, replacement: Replacement::Fifo },
                ops,
            );
        }

        #[test]
        fn len_never_exceeds_capacity(keys in proptest::collection::vec(any::<u64>(), 0..500)) {
            let mut c = small(4, 32);
            for k in keys {
                if !c.access(k, k % 2 == 0) {
                    c.insert(k, k % 2 == 0);
                }
            }
            prop_assert!(c.len() <= 32 + 4); // sets may round capacity up slightly
        }

        #[test]
        fn inserted_key_is_resident(key in any::<u64>()) {
            let mut c = small(4, 32);
            c.insert(key, false);
            prop_assert!(c.contains(key));
            prop_assert!(c.access(key, false));
        }
    }

    // ---- S3-FIFO invariant proptests (no oracle: structural checks) ----

    /// Count (small, main) queue occupancy from the flag bytes.
    fn s3_queue_counts(c: &MetadataCache) -> (usize, usize) {
        let mut small = 0;
        let mut main = 0;
        for &f in c.flags.iter() {
            if f & FLAG_VALID != 0 {
                if f & FLAG_SMALL != 0 {
                    small += 1;
                } else {
                    main += 1;
                }
            }
        }
        (small, main)
    }

    fn assert_s3_invariants(c: &MetadataCache, accesses: u64) {
        let s = c.stats();
        // Queue-size conservation: every valid way is in exactly one
        // queue, and together they are exactly the resident population.
        let (small, main) = s3_queue_counts(c);
        assert_eq!(small + main, c.len(), "queues partition the residents");
        assert!(c.len() <= c.config().capacity + c.config().associativity);
        // Hit accounting is queue-exact and policy-uniform.
        assert_eq!(s.hits, s.small_hits + s.main_hits);
        assert_eq!(s.hits + s.misses, accesses);
        // Dirty accounting never exceeds the population.
        assert!(c.dirty_count() <= c.len() as u64);
        // The ghost holds fingerprints only (one u16 lane per way, ring
        // cursor in range) — never a payload slot.
        assert_eq!(c.ghosts.len(), c.num_sets * c.config().associativity);
        for &cur in c.ghost_cursor.iter() {
            assert!((cur as usize) < c.config().associativity);
        }
    }

    proptest! {
        #[test]
        fn s3fifo_invariants_hold_under_random_scripts(
            ops in proptest::collection::vec(cache_op_strategy(), 0..300)
        ) {
            let mut c = s3(4, 16);
            let mut accesses = 0u64;
            for op in ops {
                match op {
                    CacheOp::Access(k, w) => {
                        accesses += 1;
                        let hit = c.access(k, w);
                        prop_assert_eq!(hit, c.contains(k));
                    }
                    CacheOp::Insert(k, d) => {
                        c.insert(k, d);
                        prop_assert!(c.contains(k));
                    }
                    CacheOp::Prefetch(k, n) => {
                        let _ = c.prefetch_run(k, n);
                    }
                    CacheOp::Flush => {
                        c.flush_dirty();
                        prop_assert_eq!(c.dirty_count(), 0);
                    }
                }
                assert_s3_invariants(&c, accesses);
            }
        }

        #[test]
        fn s3fifo_single_way_sets_still_work(
            ops in proptest::collection::vec(cache_op_strategy(), 0..150)
        ) {
            // Degenerate geometry: assoc 1 means small_target == assoc, so
            // promotion and main re-queueing must still terminate.
            let mut c = s3(1, 4);
            let mut accesses = 0u64;
            for op in ops {
                match op {
                    CacheOp::Access(k, w) => {
                        accesses += 1;
                        c.access(k, w);
                    }
                    CacheOp::Insert(k, d) => {
                        c.insert(k, d);
                    }
                    CacheOp::Prefetch(k, n) => {
                        let _ = c.prefetch_run(k, n);
                    }
                    CacheOp::Flush => {
                        c.flush_dirty();
                    }
                }
                assert_s3_invariants(&c, accesses);
            }
        }
    }
}
