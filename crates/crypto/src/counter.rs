//! Per-line write counters for counter-mode encryption.
//!
//! Counter-mode security requires that no (address, counter) pair — and hence
//! no one-time pad — is ever reused. Each line therefore carries a counter
//! that increments on every write to that line. Following DEUCE (and §III-C
//! of the DeWrite paper) the counter is 28 bits wide; overflow in a real
//! system would force re-keying and re-encryption of the whole memory, so we
//! surface it as an explicit event instead of wrapping silently.

/// Width of a per-line counter, in bits (§III-C / DEUCE).
pub const COUNTER_BITS: u32 = 28;

/// Maximum representable counter value (2^28 − 1).
pub const COUNTER_MAX: u32 = (1 << COUNTER_BITS) - 1;

/// A 28-bit per-line write counter.
///
/// ```
/// use dewrite_crypto::LineCounter;
/// let mut c = LineCounter::new();
/// assert_eq!(c.value(), 0);
/// assert!(c.increment());
/// assert_eq!(c.value(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineCounter(u32);

impl LineCounter {
    /// A fresh counter starting at zero.
    pub fn new() -> Self {
        LineCounter(0)
    }

    /// Reconstruct a counter from a stored value.
    ///
    /// # Panics
    ///
    /// Panics if `value` exceeds [`COUNTER_MAX`] — stored counters are always
    /// 28 bits, so a wider value indicates metadata corruption.
    pub fn from_value(value: u32) -> Self {
        assert!(
            value <= COUNTER_MAX,
            "counter value {value:#x} exceeds 28 bits"
        );
        LineCounter(value)
    }

    /// The current counter value.
    pub fn value(self) -> u32 {
        self.0
    }

    /// Increment for a new write. Returns `false` on overflow, in which case
    /// the counter saturates and the caller must re-key (the simulator counts
    /// these events; they never occur in practical runs, 2^28 writes/line).
    #[must_use]
    pub fn increment(&mut self) -> bool {
        if self.0 >= COUNTER_MAX {
            return false;
        }
        self.0 += 1;
        true
    }

    /// Whether the counter has saturated.
    pub fn is_saturated(self) -> bool {
        self.0 == COUNTER_MAX
    }
}

impl std::fmt::Display for LineCounter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_increments() {
        let mut c = LineCounter::new();
        for expected in 1..=100 {
            assert!(c.increment());
            assert_eq!(c.value(), expected);
        }
    }

    #[test]
    fn default_equals_new() {
        assert_eq!(LineCounter::default(), LineCounter::new());
    }

    #[test]
    fn saturates_at_max() {
        let mut c = LineCounter::from_value(COUNTER_MAX - 1);
        assert!(c.increment());
        assert!(c.is_saturated());
        assert!(!c.increment());
        assert_eq!(c.value(), COUNTER_MAX);
    }

    #[test]
    #[should_panic(expected = "exceeds 28 bits")]
    fn from_value_rejects_wide_values() {
        let _ = LineCounter::from_value(COUNTER_MAX + 1);
    }

    #[test]
    fn display() {
        assert_eq!(LineCounter::from_value(42).to_string(), "42");
    }
}
