//! Software-throughput counterpart of Table I(a): fingerprinting a 256 B
//! line with CRC-32 / CRC-32C / MD5 / SHA-1, plus AES-128 counter-mode
//! encryption of a full line. (Simulated *hardware* latencies are the
//! constants in `dewrite_hashes::HashCost`; these benches document the cost
//! of the functional implementations driving the simulator.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dewrite_crypto::{Aes128, Aes128Reference, CounterModeEngine, LineCounter};
use dewrite_hashes::{Crc32, Crc32c, CrcBackend, HashAlgorithm};

fn bench_fingerprints(c: &mut Criterion) {
    let line: Vec<u8> = (0..256).map(|i| (i * 31 % 251) as u8).collect();
    let mut group = c.benchmark_group("fingerprint_256B");
    group.throughput(Throughput::Bytes(256));
    for alg in HashAlgorithm::ALL {
        let hasher = alg.hasher();
        group.bench_with_input(BenchmarkId::from_parameter(alg), &line, |b, line| {
            b.iter(|| hasher.digest(std::hint::black_box(line)));
        });
    }
    group.finish();
}

fn bench_aes_line(c: &mut Criterion) {
    let engine = CounterModeEngine::new(b"benchmark key 16");
    let line = vec![0xA5u8; 256];
    let ctr = LineCounter::from_value(7);
    let mut group = c.benchmark_group("aes_ctr_256B");
    group.throughput(Throughput::Bytes(256));
    group.bench_function("encrypt_line", |b| {
        b.iter(|| engine.encrypt_line(std::hint::black_box(&line), 0x1000, ctr));
    });
    group.bench_function("encrypt_line_into", |b| {
        let mut buf = [0u8; 256];
        b.iter(|| {
            engine.encrypt_line_into(std::hint::black_box(&line), 0x1000, ctr, &mut buf);
            buf[0]
        });
    });
    group.bench_function("one_time_pad", |b| {
        b.iter(|| engine.one_time_pad(std::hint::black_box(0x1000), ctr, 256));
    });
    group.finish();
}

/// One 16-byte block through each AES backend: the from-scratch reference
/// oracle, the portable T-table engine, and (when the host has it) AES-NI.
fn bench_aes_backends(c: &mut Criterion) {
    let key = *b"benchmark key 16";
    let block = [0x5Au8; 16];
    let mut group = c.benchmark_group("aes_block_16B");
    group.throughput(Throughput::Bytes(16));
    let reference = Aes128Reference::new(&key);
    group.bench_function("reference", |b| {
        b.iter(|| reference.encrypt_block(std::hint::black_box(&block)));
    });
    let ttable = Aes128::portable(&key);
    group.bench_function("t-table", |b| {
        b.iter(|| ttable.encrypt_block(std::hint::black_box(&block)));
    });
    if let Some(hw) = Aes128::hardware(&key) {
        group.bench_function("aes-ni", |b| {
            b.iter(|| hw.encrypt_block(std::hint::black_box(&block)));
        });
    }
    group.finish();
}

/// A 256 B digest through each CRC implementation: the seed-era
/// byte-at-a-time loop, slice-by-8, and (when the host has it) SSE4.2
/// hardware CRC-32C.
fn bench_crc_backends(c: &mut Criterion) {
    let line: Vec<u8> = (0..256).map(|i| (i * 31 % 251) as u8).collect();
    let mut group = c.benchmark_group("crc_256B");
    group.throughput(Throughput::Bytes(256));
    let crc32 = Crc32::new();
    group.bench_function("bytewise", |b| {
        b.iter(|| crc32.checksum_bytewise(std::hint::black_box(&line)));
    });
    group.bench_function("slice-by-8", |b| {
        b.iter(|| crc32.checksum(std::hint::black_box(&line)));
    });
    let crc32c = Crc32c::new();
    if crc32c.backend_kind() == CrcBackend::Sse42 {
        group.bench_function("crc32c-sse4.2", |b| {
            b.iter(|| crc32c.checksum(std::hint::black_box(&line)));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_fingerprints,
    bench_aes_line,
    bench_aes_backends,
    bench_crc_backends
);
criterion_main!(benches);
