//! The colocated metadata layout of §III-C (Figs. 8 and 9), byte-accurate.
//!
//! Per memory line the layout keeps two 33-bit slots (4 B payload + 1 flag
//! bit): the **address-mapping slot** (a real address when the line's
//! initial address is deduplicated away from home) and the **inverted-hash
//! slot** (the digest of the content resident in the line). The paper's
//! observation: for every line, at least one of the two is null — so the
//! line's 28-bit encryption counter is embedded in the null slot, and the
//! dedicated counter table disappears. The flag bit says whether a slot
//! holds its payload or a counter.
//!
//! The corner the paper does not discuss: an address whose own home line
//! still holds *shared* content (referenced by others) after the address
//! was remapped elsewhere has **both** slots occupied — mapping for itself,
//! hash for the content squatting in its home. Such counters spill to a
//! small overflow table; [`ColocationStats`] reports how rare that is
//! (validating the paper's ≥1-null-slot claim on real end states), and
//! [`ColocatedStore::storage_overhead`] reproduces the 6.25% arithmetic.

use std::collections::HashMap;

use dewrite_crypto::{LineCounter, COUNTER_MAX};
use dewrite_nvm::LineAddr;

/// What one 33-bit slot holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Slot {
    /// Null (flag irrelevant): free to hold a counter.
    #[default]
    Empty,
    /// The slot's own payload (real address or digest), flag = 0.
    Payload(u32),
    /// An embedded 28-bit encryption counter, flag = 1.
    Counter(u32),
}

/// One line's metadata row: `(addr-map slot, inverted-hash slot)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Row {
    /// Address-mapping slot (real address when deduplicated).
    pub addr_map: Slot,
    /// Inverted-hash slot (digest of the resident content).
    pub inverted: Slot,
}

impl Row {
    /// Pack the row into its 9-byte on-NVM representation:
    /// `[flags][addr_map u32][inverted u32]`, where bit 0 / bit 1 of the
    /// flag byte mark a counter in the respective slot and bits 4/5 mark
    /// occupancy.
    pub fn to_bytes(self) -> [u8; 9] {
        let mut out = [0u8; 9];
        let encode = |slot: Slot| -> (u8, u8, u32) {
            match slot {
                Slot::Empty => (0, 0, 0),
                Slot::Payload(v) => (0, 1, v),
                Slot::Counter(v) => (1, 1, v),
            }
        };
        let (f0, o0, v0) = encode(self.addr_map);
        let (f1, o1, v1) = encode(self.inverted);
        out[0] = f0 | (f1 << 1) | (o0 << 4) | (o1 << 5);
        out[1..5].copy_from_slice(&v0.to_le_bytes());
        out[5..9].copy_from_slice(&v1.to_le_bytes());
        out
    }

    /// Unpack a row from its 9-byte representation.
    pub fn from_bytes(bytes: &[u8; 9]) -> Row {
        let decode = |flag: bool, occupied: bool, v: u32| -> Slot {
            match (occupied, flag) {
                (false, _) => Slot::Empty,
                (true, false) => Slot::Payload(v),
                (true, true) => Slot::Counter(v),
            }
        };
        let v0 = u32::from_le_bytes(bytes[1..5].try_into().expect("4 bytes"));
        let v1 = u32::from_le_bytes(bytes[5..9].try_into().expect("4 bytes"));
        Row {
            addr_map: decode(bytes[0] & 1 != 0, bytes[0] & 0x10 != 0, v0),
            inverted: decode(bytes[0] & 2 != 0, bytes[0] & 0x20 != 0, v1),
        }
    }
}

/// Aggregate layout statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ColocationStats {
    /// Lines tracked.
    pub lines: u64,
    /// Rows whose counter is embedded in the address-mapping slot.
    pub counters_in_addr_map: u64,
    /// Rows whose counter is embedded in the inverted-hash slot.
    pub counters_in_inverted: u64,
    /// Counters that had to spill to the overflow table (both slots busy).
    pub overflow_counters: u64,
    /// Lines that have no counter (never encrypted).
    pub no_counter: u64,
}

impl ColocationStats {
    /// Fraction of counters that fit in a null slot (the paper's claim is
    /// that this is effectively all of them).
    pub fn embedded_fraction(&self) -> f64 {
        let total = self.counters_in_addr_map + self.counters_in_inverted + self.overflow_counters;
        if total == 0 {
            1.0
        } else {
            (total - self.overflow_counters) as f64 / total as f64
        }
    }
}

/// The byte-accurate colocated metadata store.
#[derive(Debug, Clone)]
pub struct ColocatedStore {
    rows: Vec<Row>,
    overflow: HashMap<u64, u32>,
}

impl ColocatedStore {
    /// An empty layout over `lines` lines.
    pub fn new(lines: u64) -> Self {
        ColocatedStore {
            rows: vec![Row::default(); lines as usize],
            overflow: HashMap::new(),
        }
    }

    /// Number of lines tracked.
    pub fn lines(&self) -> u64 {
        self.rows.len() as u64
    }

    fn row_mut(&mut self, line: LineAddr) -> &mut Row {
        &mut self.rows[line.index() as usize]
    }

    /// The row for `line`.
    pub fn row(&self, line: LineAddr) -> Row {
        self.rows[line.index() as usize]
    }

    /// Extract the counter currently stored for `line`, wherever it lives.
    fn take_counter(&mut self, line: LineAddr) -> Option<u32> {
        if let Some(v) = self.overflow.remove(&line.index()) {
            return Some(v);
        }
        let row = self.row_mut(line);
        if let Slot::Counter(v) = row.addr_map {
            row.addr_map = Slot::Empty;
            return Some(v);
        }
        if let Slot::Counter(v) = row.inverted {
            row.inverted = Slot::Empty;
            return Some(v);
        }
        None
    }

    /// Place `counter` for `line` into a null slot, spilling to overflow
    /// when both slots hold payloads.
    fn place_counter(&mut self, line: LineAddr, counter: u32) {
        let row = self.row_mut(line);
        match (&row.addr_map, &row.inverted) {
            (Slot::Empty, _) => row.addr_map = Slot::Counter(counter),
            (_, Slot::Empty) => row.inverted = Slot::Counter(counter),
            _ => {
                self.overflow.insert(line.index(), counter);
            }
        }
    }

    /// Record that `init` maps to `real` (or back home when `None`).
    pub fn set_mapping(&mut self, init: LineAddr, real: Option<LineAddr>) {
        let counter = self.take_counter(init);
        let row = self.row_mut(init);
        row.addr_map = match real {
            Some(r) => Slot::Payload(r.index() as u32),
            None => Slot::Empty,
        };
        if let Some(c) = counter {
            self.place_counter(init, c);
        }
    }

    /// Record the digest of the content resident at `line` (or clear it
    /// when the line is freed).
    pub fn set_resident_hash(&mut self, line: LineAddr, digest: Option<u32>) {
        let counter = self.take_counter(line);
        let row = self.row_mut(line);
        row.inverted = match digest {
            Some(d) => Slot::Payload(d),
            None => Slot::Empty,
        };
        if let Some(c) = counter {
            self.place_counter(line, c);
        }
    }

    /// Store `counter` for `line`.
    ///
    /// # Panics
    ///
    /// Panics if the value exceeds 28 bits (the paper's counter width).
    pub fn set_counter(&mut self, line: LineAddr, counter: LineCounter) {
        assert!(counter.value() <= COUNTER_MAX);
        let _ = self.take_counter(line);
        self.place_counter(line, counter.value());
    }

    /// The counter stored for `line`, if any.
    pub fn counter(&self, line: LineAddr) -> Option<LineCounter> {
        if let Some(&v) = self.overflow.get(&line.index()) {
            return Some(LineCounter::from_value(v));
        }
        let row = self.rows[line.index() as usize];
        match (row.addr_map, row.inverted) {
            (Slot::Counter(v), _) | (_, Slot::Counter(v)) => Some(LineCounter::from_value(v)),
            _ => None,
        }
    }

    /// The mapping payload for `init`, if deduplicated.
    pub fn mapping(&self, init: LineAddr) -> Option<LineAddr> {
        match self.rows[init.index() as usize].addr_map {
            Slot::Payload(v) => Some(LineAddr::new(u64::from(v))),
            _ => None,
        }
    }

    /// The resident digest at `line`, if any.
    pub fn resident_hash(&self, line: LineAddr) -> Option<u32> {
        match self.rows[line.index() as usize].inverted {
            Slot::Payload(v) => Some(v),
            _ => None,
        }
    }

    /// Aggregate statistics over the layout.
    pub fn stats(&self) -> ColocationStats {
        let mut s = ColocationStats {
            lines: self.lines(),
            overflow_counters: self.overflow.len() as u64,
            ..Default::default()
        };
        for (i, row) in self.rows.iter().enumerate() {
            match (row.addr_map, row.inverted) {
                (Slot::Counter(_), _) => s.counters_in_addr_map += 1,
                (_, Slot::Counter(_)) => s.counters_in_inverted += 1,
                _ if self.overflow.contains_key(&(i as u64)) => {}
                _ => s.no_counter += 1,
            }
        }
        s
    }

    /// Metadata bytes per line under this layout: two 4 B+flag slots
    /// (address map + inverted hash, counters embedded) + the hash-table
    /// entry (9 B amortized upper bound) + the FSM bit — the paper's
    /// ≈6.25%-of-capacity arithmetic (§IV-E1).
    pub fn storage_overhead(line_size: usize) -> f64 {
        let per_line_bits = (4 * 8 + 1) + (4 * 8 + 1) + 8 * 8 + 1; // §IV-E1: 4B+4B+8B+3bit
        per_line_bits as f64 / (line_size * 8) as f64
    }

    /// Serialize every row (9 B each) — the metadata region image.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.rows.len() * 9);
        for row in &self.rows {
            out.extend_from_slice(&row.to_bytes());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn l(i: u64) -> LineAddr {
        LineAddr::new(i)
    }

    #[test]
    fn counter_lives_in_a_null_slot() {
        let mut s = ColocatedStore::new(8);
        s.set_counter(l(0), LineCounter::from_value(7));
        assert_eq!(s.counter(l(0)), Some(LineCounter::from_value(7)));
        assert_eq!(s.stats().counters_in_addr_map, 1);
        assert_eq!(s.stats().overflow_counters, 0);
    }

    #[test]
    fn counter_relocates_when_mapping_arrives() {
        let mut s = ColocatedStore::new(8);
        s.set_counter(l(2), LineCounter::from_value(9));
        // A mapping occupies the addr-map slot; the counter must move to
        // the inverted slot (Fig. 9's "either-or" placement).
        s.set_mapping(l(2), Some(l(5)));
        assert_eq!(s.mapping(l(2)), Some(l(5)));
        assert_eq!(s.counter(l(2)), Some(LineCounter::from_value(9)));
        assert_eq!(s.stats().counters_in_inverted, 1);
    }

    #[test]
    fn both_slots_busy_spills_to_overflow() {
        let mut s = ColocatedStore::new(8);
        s.set_counter(l(3), LineCounter::from_value(4));
        s.set_mapping(l(3), Some(l(6))); // line 3 remapped away…
        s.set_resident_hash(l(3), Some(0xABCD)); // …while its home still holds shared content
        assert_eq!(s.counter(l(3)), Some(LineCounter::from_value(4)));
        let st = s.stats();
        assert_eq!(st.overflow_counters, 1);
        assert!(st.embedded_fraction() < 1.0);
        // Freeing the resident content brings the counter back in-row.
        s.set_resident_hash(l(3), None);
        assert_eq!(s.stats().overflow_counters, 0);
        assert_eq!(s.counter(l(3)), Some(LineCounter::from_value(4)));
    }

    #[test]
    fn row_bytes_roundtrip() {
        let cases = [
            Row::default(),
            Row {
                addr_map: Slot::Payload(0xDEAD_BEEF),
                inverted: Slot::Empty,
            },
            Row {
                addr_map: Slot::Counter(123),
                inverted: Slot::Payload(0xFFFF_FFFF),
            },
            Row {
                addr_map: Slot::Payload(0),
                inverted: Slot::Counter(0),
            },
        ];
        for row in cases {
            assert_eq!(Row::from_bytes(&row.to_bytes()), row, "{row:?}");
        }
    }

    #[test]
    fn overhead_matches_paper_arithmetic() {
        // §IV-E1: (4B + 4B + 8B + 3 bit) / 256 B ≈ 6.4%.
        let overhead = ColocatedStore::storage_overhead(256);
        assert!((0.06..0.07).contains(&overhead), "{overhead}");
    }

    #[test]
    fn payload_and_counter_accessors_are_disjoint() {
        let mut s = ColocatedStore::new(4);
        s.set_resident_hash(l(1), Some(0x1234));
        assert_eq!(s.resident_hash(l(1)), Some(0x1234));
        assert_eq!(s.counter(l(1)), None);
        s.set_counter(l(1), LineCounter::from_value(1));
        assert_eq!(s.resident_hash(l(1)), Some(0x1234));
        assert_eq!(s.counter(l(1)), Some(LineCounter::from_value(1)));
        assert_eq!(s.mapping(l(1)), None);
    }

    proptest! {
        #[test]
        fn counters_never_lost(ops in proptest::collection::vec((0u64..8, 0u8..4, 0u32..1000), 0..100)) {
            let mut s = ColocatedStore::new(8);
            let mut expected: std::collections::HashMap<u64, u32> = Default::default();
            for (line, op, val) in ops {
                match op {
                    0 => {
                        s.set_counter(l(line), LineCounter::from_value(val));
                        expected.insert(line, val);
                    }
                    1 => s.set_mapping(l(line), if val % 2 == 0 { Some(l(u64::from(val) % 8)) } else { None }),
                    2 => s.set_resident_hash(l(line), if val % 2 == 0 { Some(val) } else { None }),
                    _ => {
                        // Counter must match whatever we last stored.
                        let got = s.counter(l(line)).map(|c| c.value());
                        prop_assert_eq!(got, expected.get(&line).copied());
                    }
                }
            }
            for (line, val) in expected {
                prop_assert_eq!(s.counter(l(line)), Some(LineCounter::from_value(val)));
            }
        }

        #[test]
        fn row_roundtrip_any(a in any::<u32>(), b in any::<u32>(), kinds in 0u8..9) {
            let slot = |k: u8, v: u32| match k % 3 {
                0 => Slot::Empty,
                1 => Slot::Payload(v),
                _ => Slot::Counter(v),
            };
            let row = Row { addr_map: slot(kinds % 3, a), inverted: slot(kinds / 3, b) };
            let decoded = Row::from_bytes(&row.to_bytes());
            // Empty slots lose their payload by design; compare canonically.
            let canon = |s: Slot| match s { Slot::Empty => Slot::Empty, other => other };
            prop_assert_eq!(canon(decoded.addr_map), canon(row.addr_map));
            prop_assert_eq!(canon(decoded.inverted), canon(row.inverted));
        }
    }
}
