//! Experiment harness reproducing every table and figure of the DeWrite
//! paper (MICRO'18), plus ablations.
//!
//! The `repro` binary drives the experiments:
//!
//! ```text
//! cargo run --release -p dewrite-bench --bin repro -- all
//! cargo run --release -p dewrite-bench --bin repro -- fig12 fig14
//! cargo run --release -p dewrite-bench --bin repro -- --quick fig2
//! ```
//!
//! Results print as aligned tables and are exported as CSV under
//! `results/` (configurable with `--out`).

#![warn(missing_docs)]

pub mod experiments;
pub mod runner;
pub mod table;

pub use experiments::Ctx;
pub use runner::{Scale, SchemeKind, Workload};
