//! Recovery: newest valid checkpoint + WAL suffix replay → a scrub-clean
//! controller.
//!
//! The algorithm (mirroring what a controller's recovery microcode would do
//! over the NVM metadata region):
//!
//! 1. scan the store directory for checkpoints, newest first; take the
//!    first that decodes (checksum + bounds + fingerprint) — a torn newest
//!    checkpoint falls back to the previous pair, which rotation always
//!    retains;
//! 2. replay every WAL segment from that checkpoint's sequence upward, in
//!    order, applying each record's [`MetaOp`]s to the state; records
//!    wholly covered by the checkpoint are skipped, and any discontinuity
//!    in the write-count chain is a hard corruption error;
//! 3. a torn tail (short/garbled record at the end of the stream) is
//!    *discarded*: the crash lost at most the final unflushed epoch — the
//!    atomic unit of loss under epoch persistence;
//! 4. the reassembled [`Snapshot`] powers a controller on
//!    ([`RecoverDeWrite::recover`]) and must pass `scrub()`.

use std::collections::HashMap;
use std::fs;
use std::path::Path;

use dewrite_core::{DeWrite, DeWriteConfig, Json, MetaOp, Snapshot, SystemConfig};
use dewrite_nvm::NvmDevice;

use crate::checkpoint::Checkpoint;
use crate::store::{ckpt_path, list_seqs, wal_path, CKPT_EXT, CKPT_PREFIX, WAL_EXT, WAL_PREFIX};
use crate::wal::{decode_wal, WalTail};
use crate::PersistError;

/// What recovery found and did (the torture summary's per-run payload).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryStats {
    /// Sequence number of the checkpoint recovery started from.
    pub checkpoint_seq: u64,
    /// Data writes that checkpoint covered.
    pub checkpoint_writes: u64,
    /// Newer checkpoints that failed to decode and were skipped.
    pub checkpoints_skipped: u64,
    /// WAL segments scanned.
    pub segments_scanned: u64,
    /// Complete epoch records replayed.
    pub records_replayed: u64,
    /// Records skipped as already covered by the checkpoint.
    pub records_skipped: u64,
    /// Data writes covered by the recovered state.
    pub writes_covered: u64,
    /// Whether a torn tail was detected (and discarded).
    pub torn_tail: bool,
    /// Bytes discarded as torn.
    pub discarded_bytes: u64,
}

impl RecoveryStats {
    /// The stats as a JSON object (for reports and CI artifacts).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "checkpoint_seq".into(),
                Json::Num(self.checkpoint_seq as f64),
            ),
            (
                "checkpoint_writes".into(),
                Json::Num(self.checkpoint_writes as f64),
            ),
            (
                "checkpoints_skipped".into(),
                Json::Num(self.checkpoints_skipped as f64),
            ),
            (
                "segments_scanned".into(),
                Json::Num(self.segments_scanned as f64),
            ),
            (
                "records_replayed".into(),
                Json::Num(self.records_replayed as f64),
            ),
            (
                "records_skipped".into(),
                Json::Num(self.records_skipped as f64),
            ),
            (
                "writes_covered".into(),
                Json::Num(self.writes_covered as f64),
            ),
            ("torn_tail".into(), Json::Bool(self.torn_tail)),
            (
                "discarded_bytes".into(),
                Json::Num(self.discarded_bytes as f64),
            ),
        ])
    }
}

/// Mutable replay state: the snapshot's three tables as maps.
struct ReplayState {
    lines: u64,
    config_fp: u64,
    mappings: HashMap<u64, u64>,
    residents: HashMap<u64, u64>,
    counters: HashMap<u64, u32>,
}

impl ReplayState {
    fn from_snapshot(s: &Snapshot) -> Self {
        ReplayState {
            lines: s.lines,
            config_fp: s.config_fp,
            mappings: s.mappings.iter().copied().collect(),
            residents: s.residents.iter().copied().collect(),
            counters: s.counters.iter().copied().collect(),
        }
    }

    fn apply(&mut self, op: MetaOp) {
        match op {
            MetaOp::MapSet { init, real } => {
                self.mappings.insert(init, real);
            }
            MetaOp::ResidentSet { real, digest } => {
                self.residents.insert(real, digest);
            }
            MetaOp::ResidentDel { real } => {
                self.residents.remove(&real);
            }
            MetaOp::CounterSet { line, value } => {
                self.counters.insert(line, value);
            }
        }
    }

    fn into_snapshot(self) -> Snapshot {
        let mut mappings: Vec<(u64, u64)> = self.mappings.into_iter().collect();
        let mut residents: Vec<(u64, u64)> = self.residents.into_iter().collect();
        let mut counters: Vec<(u64, u32)> = self.counters.into_iter().collect();
        mappings.sort_unstable();
        residents.sort_unstable();
        counters.sort_unstable();
        Snapshot {
            config_fp: self.config_fp,
            lines: self.lines,
            mappings,
            residents,
            counters,
        }
    }
}

/// Load the newest valid checkpoint under `dir` and replay the WAL suffix,
/// returning the reassembled snapshot and what recovery did.
///
/// `fingerprint` must be the current configuration's
/// [`DeWriteConfig::fingerprint`]; `max_lines` bounds decode allocations
/// (pass the configured `data_lines`).
///
/// # Errors
///
/// [`PersistError::ConfigMismatch`] when the durable state was written
/// under a different fingerprint; [`PersistError::Corrupt`] when no
/// checkpoint decodes or the record chain has a gap; [`PersistError::Io`]
/// on filesystem failures.
pub fn recover_state(
    dir: &Path,
    fingerprint: u64,
    max_lines: u64,
) -> Result<(Snapshot, RecoveryStats), PersistError> {
    let ckpt_seqs = list_seqs(dir, CKPT_PREFIX, CKPT_EXT)?;
    if ckpt_seqs.is_empty() {
        return Err(PersistError::Corrupt(format!(
            "no checkpoint found in {}",
            dir.display()
        )));
    }

    // 1. Newest checkpoint that decodes.
    let mut stats = RecoveryStats::default();
    let mut base: Option<(u64, Checkpoint)> = None;
    let mut last_decode_err = String::new();
    for &seq in ckpt_seqs.iter().rev() {
        let bytes = fs::read(ckpt_path(dir, seq))?;
        match Checkpoint::read_from_bounded(&bytes, max_lines) {
            Ok(ckpt) => {
                if ckpt.snapshot.config_fp != fingerprint {
                    return Err(PersistError::ConfigMismatch(format!(
                        "checkpoint {seq} was captured under config fingerprint {:#018x}, \
                         expected {fingerprint:#018x}",
                        ckpt.snapshot.config_fp
                    )));
                }
                base = Some((seq, ckpt));
                break;
            }
            Err(e) => {
                stats.checkpoints_skipped += 1;
                last_decode_err = e.to_string();
            }
        }
    }
    let Some((base_seq, ckpt)) = base else {
        return Err(PersistError::Corrupt(format!(
            "no checkpoint in {} decodes (last error: {last_decode_err})",
            dir.display()
        )));
    };
    stats.checkpoint_seq = base_seq;
    stats.checkpoint_writes = ckpt.writes_covered;
    stats.writes_covered = ckpt.writes_covered;

    // 2. Replay WAL segments from the checkpoint's sequence upward.
    let mut state = ReplayState::from_snapshot(&ckpt.snapshot);
    let wal_seqs: Vec<u64> = list_seqs(dir, WAL_PREFIX, WAL_EXT)?
        .into_iter()
        .filter(|&s| s >= base_seq)
        .collect();
    for seq in wal_seqs {
        stats.segments_scanned += 1;
        let bytes = fs::read(wal_path(dir, seq))?;
        let decoded = decode_wal(&bytes, fingerprint)?;
        for rec in decoded.records {
            if rec.writes_covered <= stats.writes_covered {
                stats.records_skipped += 1;
                continue;
            }
            if rec.base_writes != stats.writes_covered {
                return Err(PersistError::Corrupt(format!(
                    "WAL segment {seq}: record covers writes ({}, {}] but the \
                     state only reaches {} — a gap in the log chain",
                    rec.base_writes, rec.writes_covered, stats.writes_covered
                )));
            }
            for op in rec.ops {
                state.apply(op);
            }
            stats.writes_covered = rec.writes_covered;
            stats.records_replayed += 1;
        }
        // 3. A torn tail is discarded, never replayed. It normally sits in
        // the newest segment; a tear in an *earlier* segment is also safe —
        // any record logged after it would break the write-count chain and
        // trip the gap check above.
        if let WalTail::Torn { bytes: torn, .. } = decoded.tail {
            stats.torn_tail = true;
            stats.discarded_bytes += torn as u64;
        }
    }

    Ok((state.into_snapshot(), stats))
}

/// Extension trait hanging the recovery constructor on [`DeWrite`]
/// (imported from this crate: `DeWrite::recover(...)`).
pub trait RecoverDeWrite: Sized {
    /// Rebuild a controller from the durable store at `dir` over an
    /// existing `device`, replaying the WAL suffix and verifying the
    /// result with a full `scrub()`.
    ///
    /// # Errors
    ///
    /// All of [`recover_state`]'s errors, plus
    /// [`PersistError::Recovery`] when `power_on` or the scrub rejects the
    /// reassembled state.
    fn recover(
        dir: &Path,
        config: SystemConfig,
        dw: DeWriteConfig,
        key: &[u8; 16],
        device: NvmDevice,
    ) -> Result<(Self, RecoveryStats), PersistError>;
}

impl RecoverDeWrite for DeWrite {
    fn recover(
        dir: &Path,
        config: SystemConfig,
        dw: DeWriteConfig,
        key: &[u8; 16],
        device: NvmDevice,
    ) -> Result<(Self, RecoveryStats), PersistError> {
        let (snapshot, stats) = recover_state(dir, dw.fingerprint(), config.data_lines)?;
        let mem = DeWrite::power_on(config, dw, key, device, &snapshot)
            .map_err(PersistError::Recovery)?;
        mem.scrub().map_err(PersistError::Recovery)?;
        Ok((mem, stats))
    }
}
