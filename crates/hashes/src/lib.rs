//! Hash functions and their hardware cost models for in-line deduplication.
//!
//! The DeWrite paper (MICRO'18) contrasts two classes of fingerprinting
//! functions for detecting duplicate cache lines:
//!
//! * **Light-weight hashes** — CRC-32, computable in hardware in ~15 ns.
//!   Collisions are expected, so a digest match must be confirmed by reading
//!   the candidate line and comparing bytes (cheap on NVM, where reads are
//!   3–8× faster than writes).
//! * **Cryptographic hashes** — SHA-1 (321 ns) and MD5 (312 ns), used by
//!   traditional storage deduplication. A match is *assumed* to mean
//!   duplicate data, but the latency is comparable to an entire NVM write
//!   (300 ns), which disqualifies them for in-line memory deduplication.
//!
//! This crate provides real implementations of all four functions (validated
//! against their published test vectors) plus the latency/energy model from
//! Table I of the paper, so the rest of the system measures *actual* digests
//! of *actual* bytes while accounting time analytically.
//!
//! # Example
//!
//! ```
//! use dewrite_hashes::{Crc32, LineHasher};
//!
//! let line = [0xA5u8; 256];
//! let hasher = Crc32::new();
//! let digest = hasher.digest(&line);
//! assert_eq!(digest, hasher.digest(&line)); // deterministic
//! assert_eq!(hasher.cost().latency_ns, 15);
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod crc32;
#[cfg(target_arch = "x86_64")]
mod crc32_hw;
mod md5;
mod portable;
mod sha1;
mod strong;
#[cfg(target_arch = "x86_64")]
mod strong_simd;
mod traits;

pub use crc32::{Crc32, Crc32c, CrcBackend};
pub use md5::{md5_digest, Md5};
pub use portable::{portable_only, set_portable_only};
pub use sha1::{sha1_digest, Sha1};
pub use strong::{StrongKeyed, StrongLeg, StrongScratch, STRONG_DEFAULT_KEY, STRONG_KEY_BYTES};
pub use traits::{HashAlgorithm, HashCost, LineHasher};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_algorithms_cover_their_constructor() {
        for alg in HashAlgorithm::ALL {
            let h = alg.hasher();
            assert_eq!(h.algorithm(), alg);
        }
    }

    #[test]
    fn costs_match_paper_table_1a() {
        assert_eq!(HashAlgorithm::Sha1.cost().latency_ns, 321);
        assert_eq!(HashAlgorithm::Md5.cost().latency_ns, 312);
        assert_eq!(HashAlgorithm::Crc32.cost().latency_ns, 15);
        assert_eq!(HashAlgorithm::Sha1.cost().digest_bits, 160);
        assert_eq!(HashAlgorithm::Md5.cost().digest_bits, 128);
        assert_eq!(HashAlgorithm::Crc32.cost().digest_bits, 32);
    }
}
