//! Security-facing properties of the threat model (§II-A): data at rest on
//! the DIMM and on the bus is ciphertext, pads are never reused, and
//! deduplication does not weaken any of it.

use dewrite::core::{CmeBaseline, DeWrite, DeWriteConfig, SecureMemory, SystemConfig};
use dewrite::crypto::{CounterModeEngine, LineCounter};
use dewrite::nvm::{bit_flips, LineAddr};

const KEY: &[u8; 16] = b"security test k!";

fn config() -> SystemConfig {
    SystemConfig::for_lines(2048)
}

/// A stolen-DIMM attacker sees only ciphertext, under both schemes.
#[test]
fn stolen_dimm_sees_no_plaintext() {
    let secret = b"TOP-SECRET customer record #4711";
    let mut line = vec![0u8; 256];
    line[..secret.len()].copy_from_slice(secret);

    let mut dw = DeWrite::new(config(), DeWriteConfig::paper(), KEY);
    let mut base = CmeBaseline::new(config(), KEY);
    for i in 0..8u64 {
        dw.write(LineAddr::new(i), &line, i * 1_000).expect("write");
        base.write(LineAddr::new(i), &line, i * 1_000)
            .expect("write");
    }

    // Scan every materialized device line for the secret bytes.
    for mem in [dw.device(), base.device()] {
        for i in 0..mem.config().num_lines() {
            let raw = mem.peek_line(LineAddr::new(i)).expect("in range");
            assert!(
                !raw.windows(secret.len()).any(|w| w == secret),
                "plaintext leaked to device line {i}"
            );
        }
    }
}

/// Counter-mode pads are unique across addresses and counter values —
/// reuse would let an attacker XOR two ciphertexts.
#[test]
fn one_time_pads_are_never_reused() {
    let engine = CounterModeEngine::new(KEY);
    let mut seen = std::collections::HashSet::new();
    for addr in 0..64u64 {
        for ctr in 1..16u32 {
            let pad = engine.one_time_pad(addr, LineCounter::from_value(ctr), 32);
            assert!(seen.insert(pad), "pad reuse at addr {addr} ctr {ctr}");
        }
    }
}

/// Rewriting identical plaintext must still re-randomize the stored
/// ciphertext (counter bump), so a bus snooper cannot detect "same value
/// written again" — on the baseline. (DeWrite intentionally *eliminates*
/// such writes; nothing crosses the bus at all, which is strictly less
/// information.)
#[test]
fn rewrites_rerandomize_ciphertext() {
    let mut base = CmeBaseline::new(config(), KEY);
    let line = vec![0x11u8; 256];
    base.write(LineAddr::new(5), &line, 0).expect("write");
    let ct1 = base.device().peek_line(LineAddr::new(5)).expect("in range");
    base.write(LineAddr::new(5), &line, 10_000).expect("write");
    let ct2 = base.device().peek_line(LineAddr::new(5)).expect("in range");
    assert_ne!(ct1, ct2);
    let ratio = bit_flips(&ct1, &ct2) as f64 / 2048.0;
    assert!((0.4..0.6).contains(&ratio), "diffusion ratio {ratio}");
}

/// Deduplicated addresses reading shared ciphertext still decrypt to their
/// own correct plaintext, and overwriting one alias never corrupts another.
#[test]
fn dedup_aliases_are_isolated() {
    let mut dw = DeWrite::new(config(), DeWriteConfig::paper(), KEY);
    let shared = vec![0x77u8; 256];
    let private = vec![0x99u8; 256];

    dw.write(LineAddr::new(0), &shared, 0).expect("write");
    dw.write(LineAddr::new(1), &shared, 1_000).expect("write"); // dedup alias
    dw.write(LineAddr::new(2), &shared, 2_000).expect("write"); // dedup alias

    // Alias 1 moves on; 0 and 2 keep the shared content.
    dw.write(LineAddr::new(1), &private, 3_000).expect("write");

    assert_eq!(dw.read(LineAddr::new(0), 4_000).expect("read").data, shared);
    assert_eq!(
        dw.read(LineAddr::new(1), 5_000).expect("read").data,
        private
    );
    assert_eq!(dw.read(LineAddr::new(2), 6_000).expect("read").data, shared);
    dw.index().check_invariants().expect("invariants");
}

/// Counters increase monotonically per physical line so (address, counter)
/// pairs — and hence pads — can never repeat through a line's lifetime.
#[test]
fn counters_are_monotonic() {
    let mut c = LineCounter::new();
    let mut prev = c.value();
    for _ in 0..1_000 {
        assert!(c.increment());
        assert!(c.value() > prev);
        prev = c.value();
    }
}

/// Reading a never-written address must return logical zeros even when its
/// home line was reallocated to hold another address's (encrypted) data —
/// dedup relocation must never expose physical residue across addresses.
/// (Regression: found by the differential property test.)
#[test]
fn unwritten_addresses_never_expose_relocated_data() {
    let mut dw = DeWrite::new(config(), DeWriteConfig::paper(), KEY);
    let shared = vec![0xABu8; 256];
    let fresh = vec![0xCDu8; 256];

    // Address 0 stores content; address 2 dedups to it; address 0 then
    // overwrites, forcing its new data into a free line — which is some
    // other address's untouched home.
    dw.write(LineAddr::new(0), &shared, 0).expect("write");
    dw.write(LineAddr::new(2), &shared, 1_000).expect("write");
    dw.write(LineAddr::new(0), &fresh, 2_000).expect("write");

    // Every never-written address still reads zeros, wherever the
    // relocated line physically landed.
    let mut t = 10_000;
    for addr in 0..64u64 {
        if [0, 2].contains(&addr) {
            continue;
        }
        let r = dw.read(LineAddr::new(addr), t).expect("read");
        assert!(
            r.data.iter().all(|&b| b == 0),
            "address {addr} exposed relocated bytes"
        );
        t += 500;
    }
    // The written addresses still read their own data.
    assert_eq!(dw.read(LineAddr::new(0), t).expect("read").data, fresh);
    assert_eq!(
        dw.read(LineAddr::new(2), t + 500).expect("read").data,
        shared
    );
}
