//! Power-cycle integration: snapshot the controller's durable metadata,
//! tear the controller down, rebuild it over the same device, and verify
//! every line — including through serialization of the snapshot.

use std::collections::HashMap;

use dewrite::core::{DeWrite, DeWriteConfig, SecureMemory, Snapshot, SystemConfig};
use dewrite::nvm::LineAddr;
use dewrite::trace::{app_by_name, TraceGenerator, TraceOp};

const KEY: &[u8; 16] = b"power cycle key!";

fn populated() -> (DeWrite, HashMap<u64, Vec<u8>>, SystemConfig) {
    let mut profile = app_by_name("milc").expect("known app");
    profile.working_set_lines = 1 << 10;
    profile.content_pool_size = 128;
    let config = SystemConfig::for_lines((1 << 10) + 128 + 64);
    let mut mem = DeWrite::new(config.clone(), DeWriteConfig::paper(), KEY);

    let mut gen = TraceGenerator::new(profile, 256, 77);
    let mut shadow = HashMap::new();
    let mut t = 0u64;
    for rec in gen
        .warmup_records()
        .into_iter()
        .chain(gen.by_ref().take(4_000))
    {
        if let TraceOp::Write { addr, data } = rec.op {
            mem.write(addr, &data, t).expect("write");
            shadow.insert(addr.index(), data);
            t += 600;
        }
    }
    (mem, shadow, config)
}

#[test]
fn contents_survive_a_power_cycle() {
    let (mem, shadow, config) = populated();
    let eliminated_before = mem.base_metrics().writes_eliminated;
    assert!(eliminated_before > 0, "sanity: dedup ran");

    let (snapshot, device) = mem.power_off();
    let mut mem = DeWrite::power_on(config, DeWriteConfig::paper(), KEY, device, &snapshot)
        .expect("power on");

    // Every line reads back its pre-cycle contents.
    let mut t = 1_000_000;
    for (&addr, expect) in &shadow {
        let r = mem.read(LineAddr::new(addr), t).expect("read");
        assert_eq!(&r.data, expect, "line {addr} lost across power cycle");
        t += 500;
    }
    // The restored controller passes its own integrity scrub.
    assert!(mem.scrub().expect("scrub") > 0);
    // And keeps deduplicating. Right after power-on the hash cache and
    // predictor are cold, so PNA may legitimately treat the first
    // duplicate as fresh; once the digest is cached, detection resumes.
    let sample = shadow.values().next().expect("nonempty").clone();
    mem.write(LineAddr::new(1_000), &sample, t).expect("write");
    let w = mem
        .write(LineAddr::new(1_001), &sample, t + 10_000)
        .expect("write");
    assert!(w.eliminated, "restored controller must deduplicate again");
    mem.index()
        .check_invariants()
        .expect("invariants after restore + writes");
}

#[test]
fn snapshot_serializes_through_bytes() {
    let (mem, shadow, config) = populated();
    let (snapshot, device) = mem.power_off();

    let mut buf = Vec::new();
    snapshot.write_to(&mut buf).expect("encode");
    let decoded = Snapshot::read_from(buf.as_slice()).expect("decode");
    assert_eq!(decoded, snapshot);

    let mut mem =
        DeWrite::power_on(config, DeWriteConfig::paper(), KEY, device, &decoded).expect("power on");
    let (&addr, expect) = shadow.iter().next().expect("nonempty");
    assert_eq!(
        mem.read(LineAddr::new(addr), 0).expect("read").data,
        *expect
    );
}

#[test]
fn power_on_rejects_mismatched_configuration() {
    let (mem, _, _) = populated();
    let (snapshot, device) = mem.power_off();
    let wrong = SystemConfig::for_lines(1 << 12); // different size
    let err = DeWrite::power_on(wrong, DeWriteConfig::paper(), KEY, device, &snapshot)
        .expect_err("size mismatch");
    assert!(err.contains("lines"), "{err}");
}

#[test]
fn power_on_rejects_mismatched_dewrite_config() {
    // Restoring under a different scheme configuration (hasher, domains,
    // counter width) would silently misinterpret the tables; the snapshot's
    // config fingerprint must catch it with a descriptive error.
    let (mem, _, config) = populated();
    let (snapshot, device) = mem.power_off();

    let mut wrong_hash = DeWriteConfig::paper();
    wrong_hash.hasher = dewrite::hashes::HashAlgorithm::Crc32c;
    let err = DeWrite::power_on(config.clone(), wrong_hash, KEY, device, &snapshot)
        .expect_err("hasher mismatch");
    assert!(err.contains("fingerprint"), "{err}");

    let device = dewrite::nvm::NvmDevice::new(config.nvm.clone()).expect("device");
    let mut wrong_domains = DeWriteConfig::paper();
    wrong_domains.dedup_domains = 4;
    let err = DeWrite::power_on(config, wrong_domains, KEY, device, &snapshot)
        .expect_err("domain mismatch");
    assert!(err.contains("fingerprint"), "{err}");
}

#[test]
fn config_fingerprint_ignores_performance_knobs() {
    // Cache sizes, verify buffer, and persistence policy don't change how
    // durable state is interpreted — snapshots must survive tuning changes.
    let base = DeWriteConfig::paper();
    let mut tuned = DeWriteConfig::paper();
    tuned.meta_cache.hash_entries = 32;
    tuned.verify_buffer_entries = 0;
    tuned.persistence = dewrite::core::MetadataPersistence::EpochFlush { interval: 8 };
    assert_eq!(base.fingerprint(), tuned.fingerprint());

    let mut semantic = DeWriteConfig::paper();
    semantic.pna = false;
    assert_ne!(base.fingerprint(), semantic.fingerprint());
}

#[test]
fn counters_keep_advancing_after_restore() {
    // Pad uniqueness must hold across the cycle: rewriting a line after
    // restore must produce different ciphertext than before.
    let config = SystemConfig::for_lines(512);
    let mut mem = DeWrite::new(config.clone(), DeWriteConfig::paper(), KEY);
    let data = vec![0x33u8; 256];
    mem.write(LineAddr::new(0), &data, 0).expect("write");
    let ct_before = mem.device().peek_line(LineAddr::new(0)).expect("peek");

    let (snapshot, device) = mem.power_off();
    let mut mem = DeWrite::power_on(config, DeWriteConfig::paper(), KEY, device, &snapshot)
        .expect("power on");

    // Make line 0 sole-owned rewrite in place with fresh (unique) content,
    // then write the original data back: the counter must have advanced,
    // so the ciphertext differs from the pre-cycle one.
    let mut unique = vec![0x44u8; 256];
    unique[0..8].copy_from_slice(&0xDEAD_BEEFu64.to_le_bytes());
    mem.write(LineAddr::new(0), &unique, 10_000).expect("write");
    mem.write(LineAddr::new(0), &data, 20_000).expect("write");
    let ct_after = mem.device().peek_line(LineAddr::new(0)).expect("peek");
    assert_ne!(ct_before, ct_after, "counter reuse across power cycle");
    assert_eq!(mem.read(LineAddr::new(0), 30_000).expect("read").data, data);
}
