//! Controller-state snapshot: serialize the durable metadata (dedup tables
//! and per-line counters) so a DeWrite memory can power-cycle.
//!
//! In hardware, this state lives in the encrypted NVM metadata region and
//! survives power loss by construction (given one of the §V persistence
//! schemes for the *cached* portion). In the simulator, the authoritative
//! copies are in-controller structures, so a restart needs an explicit
//! snapshot: [`DeWrite::snapshot`](crate::DeWrite::snapshot) captures it,
//! [`DeWrite::power_on`](crate::DeWrite::power_on) rebuilds a controller
//! over the same device, and [`DeWrite::scrub`](crate::DeWrite::scrub)
//! verifies the result.
//!
//! # Format (version 2)
//!
//! A snapshot image is `magic "DWSS" · version u16 · crc u32 · payload`,
//! where the CRC-32 covers the whole payload and the payload is
//! `config_fp u64 · lines u64 · mappings · residents · counters` (each
//! section a `u64` count followed by fixed-size little-endian records).
//!
//! The decoder is hardened against corrupt or adversarial input: the
//! payload is length-capped before it is buffered, the checksum is verified
//! before any field is interpreted, and every count is bounded both by the
//! bytes actually present and by a caller-supplied (config-derived) line
//! maximum — a corrupt header can never demand a large allocation.

use std::collections::HashMap;
use std::io::{self, Read, Write};

use dewrite_crypto::LineCounter;
use dewrite_hashes::Crc32;
use dewrite_nvm::LineAddr;

use crate::dedup::DedupIndex;

/// Magic bytes of a snapshot stream.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"DWSS";
/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u16 = 3;
/// Hard ceiling on the line count any snapshot may claim: 2^40 lines
/// (a 256 TB device at 256 B lines) — far beyond any simulated config.
pub const MAX_SNAPSHOT_LINES: u64 = 1 << 40;

/// Bytes of one mapping record (`init u64`, `real u64`).
const MAPPING_BYTES: u64 = 16;
/// Bytes of one resident record (`real u64`, `digest u64`).
const RESIDENT_BYTES: u64 = 16;
/// Bytes of one counter record (`line u64`, `value u32`).
const COUNTER_BYTES: u64 = 12;
/// Payload bytes before the variable sections (`config_fp`, `lines`).
const FIXED_PAYLOAD_BYTES: u64 = 16;

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// The durable controller state of a DeWrite memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Fingerprint of the controller configuration that produced this
    /// snapshot ([`DeWriteConfig::fingerprint`](crate::DeWriteConfig::fingerprint)).
    /// Restoring under a configuration with a different fingerprint would
    /// silently misinterpret the tables, so
    /// [`DeWrite::power_on`](crate::DeWrite::power_on) rejects mismatches.
    pub config_fp: u64,
    /// Number of data lines the index covers.
    pub lines: u64,
    /// `initAddr → realAddr` for every written address (identity entries
    /// included, so residency can be rebuilt).
    pub mappings: Vec<(u64, u64)>,
    /// `realAddr → digest` for every resident line.
    pub residents: Vec<(u64, u64)>,
    /// `line → counter` for every line ever encrypted.
    pub counters: Vec<(u64, u32)>,
}

impl Snapshot {
    /// Capture the durable state from an index and counter map, stamped
    /// with the owning configuration's fingerprint.
    pub fn capture(
        index: &DedupIndex,
        counters: &HashMap<u64, LineCounter>,
        config_fp: u64,
    ) -> Self {
        let mut mappings = Vec::new();
        let mut residents = Vec::new();
        for i in 0..index.lines() {
            let init = LineAddr::new(i);
            if let Some(real) = index.resolve(init) {
                mappings.push((i, real.index()));
            }
            if let Some(digest) = index.digest_of(init) {
                residents.push((i, digest));
            }
        }
        let mut counters: Vec<(u64, u32)> = counters.iter().map(|(&l, c)| (l, c.value())).collect();
        counters.sort_unstable();
        mappings.sort_unstable();
        residents.sort_unstable();
        Snapshot {
            config_fp,
            lines: index.lines(),
            mappings,
            residents,
            counters,
        }
    }

    /// An empty snapshot over `lines` lines (the state of a fresh
    /// controller): no mappings, no residents, no counters.
    pub fn empty(lines: u64, config_fp: u64) -> Self {
        Snapshot {
            config_fp,
            lines,
            mappings: Vec::new(),
            residents: Vec::new(),
            counters: Vec::new(),
        }
    }

    /// Rebuild the dedup index and counter map.
    ///
    /// The hash table is reconstructed from the resident set: one entry per
    /// resident line, with reference counts recomputed from the mappings —
    /// exactly what a recovery scan of the inverted table would produce.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency (mapping to a
    /// non-resident line, out-of-range address).
    pub fn rebuild(&self) -> Result<(DedupIndex, HashMap<u64, LineCounter>), String> {
        self.rebuild_with_domains(1)
    }

    /// Like [`rebuild`](Self::rebuild) with the configured number of dedup
    /// domains, so the rebuilt index keeps enforcing domain isolation.
    pub fn rebuild_with_domains(
        &self,
        domains: u64,
    ) -> Result<(DedupIndex, HashMap<u64, LineCounter>), String> {
        let mut index = DedupIndex::with_domains(self.lines, domains.max(1));
        let resident: HashMap<u64, u64> = self.residents.iter().copied().collect();

        // Install every resident line first (owner stores)…
        for &(line, digest) in &self.residents {
            if line >= self.lines {
                return Err(format!("resident line {line} out of range"));
            }
            index.restore_resident(LineAddr::new(line), digest);
        }
        // …then re-link every written address.
        for &(init, real) in &self.mappings {
            if init >= self.lines || real >= self.lines {
                return Err(format!("mapping {init}->{real} out of range"));
            }
            if !resident.contains_key(&real) {
                return Err(format!(
                    "mapping {init}->{real} targets a non-resident line"
                ));
            }
            index.restore_mapping(LineAddr::new(init), LineAddr::new(real));
        }
        index
            .check_invariants()
            .map_err(|e| format!("rebuilt index is inconsistent: {e}"))?;

        let mut counters = HashMap::new();
        for &(line, value) in &self.counters {
            counters.insert(line, LineCounter::from_value(value));
        }
        Ok((index, counters))
    }

    /// Encode the payload (everything the CRC covers).
    fn encode_payload(&self) -> Vec<u8> {
        let mut p = Vec::with_capacity(
            (FIXED_PAYLOAD_BYTES
                + 24
                + self.mappings.len() as u64 * MAPPING_BYTES
                + self.residents.len() as u64 * RESIDENT_BYTES
                + self.counters.len() as u64 * COUNTER_BYTES) as usize,
        );
        p.extend_from_slice(&self.config_fp.to_le_bytes());
        p.extend_from_slice(&self.lines.to_le_bytes());
        p.extend_from_slice(&(self.mappings.len() as u64).to_le_bytes());
        for &(a, b) in &self.mappings {
            p.extend_from_slice(&a.to_le_bytes());
            p.extend_from_slice(&b.to_le_bytes());
        }
        p.extend_from_slice(&(self.residents.len() as u64).to_le_bytes());
        for &(line, digest) in &self.residents {
            p.extend_from_slice(&line.to_le_bytes());
            p.extend_from_slice(&digest.to_le_bytes());
        }
        p.extend_from_slice(&(self.counters.len() as u64).to_le_bytes());
        for &(line, ctr) in &self.counters {
            p.extend_from_slice(&line.to_le_bytes());
            p.extend_from_slice(&ctr.to_le_bytes());
        }
        p
    }

    /// Serialize to a writer.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_to<W: Write>(&self, mut w: W) -> io::Result<()> {
        let payload = self.encode_payload();
        let crc = Crc32::new().checksum(&payload);
        w.write_all(&SNAPSHOT_MAGIC)?;
        w.write_all(&SNAPSHOT_VERSION.to_le_bytes())?;
        w.write_all(&crc.to_le_bytes())?;
        w.write_all(&payload)?;
        Ok(())
    }

    /// Deserialize from a reader with the default
    /// [`MAX_SNAPSHOT_LINES`] bound. Prefer
    /// [`read_from_bounded`](Self::read_from_bounded) when the expected
    /// line count is known from configuration.
    ///
    /// # Errors
    ///
    /// Fails with [`io::ErrorKind::InvalidData`] on bad magic/version, a
    /// checksum mismatch, a truncated stream, or counts exceeding the input.
    pub fn read_from<R: Read>(r: R) -> io::Result<Self> {
        Self::read_from_bounded(r, MAX_SNAPSHOT_LINES)
    }

    /// Deserialize from a reader, rejecting any image claiming more than
    /// `max_lines` lines (callers derive the bound from their
    /// [`SystemConfig`](crate::SystemConfig), e.g. `data_lines`).
    ///
    /// The input is buffered up to a size bound derived from `max_lines`
    /// *before* any length prefix is trusted, the CRC is verified before
    /// any field is interpreted, and every section count is additionally
    /// bounded by the remaining payload bytes — a corrupt header cannot
    /// demand a multi-GB allocation.
    ///
    /// # Errors
    ///
    /// Fails with [`io::ErrorKind::InvalidData`] as [`read_from`](Self::read_from).
    pub fn read_from_bounded<R: Read>(mut r: R, max_lines: u64) -> io::Result<Self> {
        let max_lines = max_lines.min(MAX_SNAPSHOT_LINES);
        let mut head = [0u8; 10];
        r.read_exact(&mut head)?;
        if head[0..4] != SNAPSHOT_MAGIC {
            return Err(bad("not a DeWrite snapshot"));
        }
        let version = u16::from_le_bytes([head[4], head[5]]);
        if version != SNAPSHOT_VERSION {
            return Err(bad(format!(
                "unsupported snapshot version {version} (expected {SNAPSHOT_VERSION})"
            )));
        }
        let crc = u32::from_le_bytes([head[6], head[7], head[8], head[9]]);

        // Buffer the payload, capped at the largest size a `max_lines`
        // snapshot can legitimately occupy. `read_to_end` grows with the
        // bytes actually supplied, so a short corrupt stream allocates
        // proportionally to its own length, never to a claimed count.
        let cap = FIXED_PAYLOAD_BYTES.saturating_add(24).saturating_add(
            max_lines.saturating_mul(MAPPING_BYTES + RESIDENT_BYTES + COUNTER_BYTES),
        );
        let mut payload = Vec::new();
        let read = r.by_ref().take(cap + 1).read_to_end(&mut payload)? as u64;
        if read > cap {
            return Err(bad(format!(
                "snapshot payload exceeds the {cap}-byte bound for {max_lines} lines"
            )));
        }
        if Crc32::new().checksum(&payload) != crc {
            return Err(bad("snapshot checksum mismatch (corrupt or torn image)"));
        }

        let mut cur = &payload[..];
        let take_u64 = |cur: &mut &[u8]| -> io::Result<u64> {
            if cur.len() < 8 {
                return Err(bad("snapshot payload truncated"));
            }
            let (head, rest) = cur.split_at(8);
            *cur = rest;
            Ok(u64::from_le_bytes(head.try_into().expect("8 bytes")))
        };
        let take_u32 = |cur: &mut &[u8]| -> io::Result<u32> {
            if cur.len() < 4 {
                return Err(bad("snapshot payload truncated"));
            }
            let (head, rest) = cur.split_at(4);
            *cur = rest;
            Ok(u32::from_le_bytes(head.try_into().expect("4 bytes")))
        };

        let config_fp = take_u64(&mut cur)?;
        let lines = take_u64(&mut cur)?;
        if lines > max_lines {
            return Err(bad(format!(
                "snapshot claims {lines} lines, above the configured maximum {max_lines}"
            )));
        }
        // Each section's count is bounded by the configured line space AND
        // by the bytes actually remaining, so `with_capacity` is safe.
        let section = |cur: &mut &[u8], entry_bytes: u64, name: &str| -> io::Result<usize> {
            let n = take_u64(cur)?;
            if n > lines {
                return Err(bad(format!(
                    "snapshot {name} count {n} exceeds the {lines}-line index"
                )));
            }
            if n > cur.len() as u64 / entry_bytes {
                return Err(bad(format!(
                    "snapshot {name} count {n} exceeds the remaining {} payload bytes",
                    cur.len()
                )));
            }
            Ok(n as usize)
        };

        let n = section(&mut cur, MAPPING_BYTES, "mapping")?;
        let mut mappings = Vec::with_capacity(n);
        for _ in 0..n {
            let a = take_u64(&mut cur)?;
            let b = take_u64(&mut cur)?;
            mappings.push((a, b));
        }
        let n = section(&mut cur, RESIDENT_BYTES, "resident")?;
        let mut residents = Vec::with_capacity(n);
        for _ in 0..n {
            let line = take_u64(&mut cur)?;
            let digest = take_u64(&mut cur)?;
            residents.push((line, digest));
        }
        let n = section(&mut cur, COUNTER_BYTES, "counter")?;
        let mut counters = Vec::with_capacity(n);
        for _ in 0..n {
            let line = take_u64(&mut cur)?;
            let value = take_u32(&mut cur)?;
            counters.push((line, value));
        }
        if !cur.is_empty() {
            return Err(bad(format!(
                "snapshot payload has {} trailing bytes",
                cur.len()
            )));
        }
        Ok(Snapshot {
            config_fp,
            lines,
            mappings,
            residents,
            counters,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_index() -> (DedupIndex, HashMap<u64, LineCounter>) {
        let mut idx = DedupIndex::new(16);
        // line 0 stores content A (digest 10), lines 1 and 2 dedup to it;
        // line 3 stores content B (digest 20).
        idx.apply_store(LineAddr::new(0), 10);
        idx.apply_duplicate(LineAddr::new(1), LineAddr::new(0));
        idx.apply_duplicate(LineAddr::new(2), LineAddr::new(0));
        idx.apply_store(LineAddr::new(3), 20);
        let mut counters = HashMap::new();
        counters.insert(0u64, LineCounter::from_value(5));
        counters.insert(3u64, LineCounter::from_value(2));
        (idx, counters)
    }

    #[test]
    fn capture_rebuild_roundtrip() {
        let (idx, counters) = sample_index();
        let snap = Snapshot::capture(&idx, &counters, 0xFEED);
        assert_eq!(snap.config_fp, 0xFEED);
        let (rebuilt, rcounters) = snap.rebuild().expect("rebuild");
        assert_eq!(rebuilt.resolve(LineAddr::new(1)), Some(LineAddr::new(0)));
        assert_eq!(rebuilt.resolve(LineAddr::new(2)), Some(LineAddr::new(0)));
        assert_eq!(rebuilt.resolve(LineAddr::new(3)), Some(LineAddr::new(3)));
        assert_eq!(rebuilt.reference_of(LineAddr::new(0)), Some(3));
        assert_eq!(rebuilt.digest_of(LineAddr::new(3)), Some(20));
        assert_eq!(rcounters[&0].value(), 5);
        rebuilt.check_invariants().expect("invariants");
    }

    #[test]
    fn serialization_roundtrip() {
        let (idx, counters) = sample_index();
        let snap = Snapshot::capture(&idx, &counters, 77);
        let mut buf = Vec::new();
        snap.write_to(&mut buf).expect("encode");
        let decoded = Snapshot::read_from(buf.as_slice()).expect("decode");
        assert_eq!(decoded, snap);
    }

    #[test]
    fn rejects_bad_magic_and_truncation() {
        assert!(Snapshot::read_from(&b"NOPE"[..]).is_err());
        let (idx, counters) = sample_index();
        let snap = Snapshot::capture(&idx, &counters, 0);
        let mut buf = Vec::new();
        snap.write_to(&mut buf).expect("encode");
        // Truncation at EVERY byte offset must error, never panic.
        for cut in 0..buf.len() {
            assert!(
                Snapshot::read_from(&buf[..cut]).is_err(),
                "truncation at {cut} decoded"
            );
        }
    }

    #[test]
    fn any_single_bit_flip_is_detected() {
        let (idx, counters) = sample_index();
        let snap = Snapshot::capture(&idx, &counters, 42);
        let mut buf = Vec::new();
        snap.write_to(&mut buf).expect("encode");
        for byte in 0..buf.len() {
            for bit in 0..8 {
                let mut corrupt = buf.clone();
                corrupt[byte] ^= 1 << bit;
                assert!(
                    Snapshot::read_from(corrupt.as_slice()).is_err(),
                    "flip at byte {byte} bit {bit} decoded"
                );
            }
        }
    }

    #[test]
    fn oversized_header_counts_are_rejected_without_allocation() {
        // A hand-built image claiming u64::MAX mappings in a 60-byte stream:
        // the decoder must reject it from the length bound (the CRC is made
        // valid on purpose so the count check itself is exercised).
        let mut payload = Vec::new();
        payload.extend_from_slice(&0u64.to_le_bytes()); // config_fp
        payload.extend_from_slice(&16u64.to_le_bytes()); // lines
        payload.extend_from_slice(&u64::MAX.to_le_bytes()); // mapping count
        let crc = Crc32::new().checksum(&payload);
        let mut buf = Vec::new();
        buf.extend_from_slice(&SNAPSHOT_MAGIC);
        buf.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        buf.extend_from_slice(&crc.to_le_bytes());
        buf.extend_from_slice(&payload);
        let err = Snapshot::read_from(buf.as_slice()).expect_err("oversized count");
        assert!(err.to_string().contains("count"), "{err}");
    }

    #[test]
    fn line_counts_above_the_configured_bound_are_rejected() {
        let snap = Snapshot::empty(1 << 20, 0);
        let mut buf = Vec::new();
        snap.write_to(&mut buf).expect("encode");
        assert!(Snapshot::read_from_bounded(buf.as_slice(), 1 << 20).is_ok());
        let err = Snapshot::read_from_bounded(buf.as_slice(), 1 << 10).expect_err("too many lines");
        assert!(err.to_string().contains("maximum"), "{err}");
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let snap = Snapshot::empty(4, 0);
        let mut buf = Vec::new();
        snap.write_to(&mut buf).expect("encode");
        buf.push(0xAB);
        assert!(Snapshot::read_from(buf.as_slice()).is_err());
    }

    #[test]
    fn rebuild_rejects_dangling_mapping() {
        let snap = Snapshot {
            config_fp: 0,
            lines: 8,
            mappings: vec![(1, 5)],
            residents: vec![], // line 5 is not resident
            counters: vec![],
        };
        let err = snap.rebuild().expect_err("dangling mapping");
        assert!(err.contains("non-resident"), "{err}");
    }

    #[test]
    fn rebuild_rejects_out_of_range() {
        let snap = Snapshot {
            config_fp: 0,
            lines: 4,
            mappings: vec![],
            residents: vec![(9, 1)],
            counters: vec![],
        };
        assert!(snap.rebuild().is_err());
    }
}
