//! Offline drop-in subset of the `proptest` API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of `proptest` its tests use: the [`proptest!`] macro,
//! `prop_assert!`/`prop_assert_eq!`, [`any`], range and tuple strategies,
//! [`collection::vec`], `prop_map`, and [`prop_oneof!`].
//!
//! Differences from upstream: no shrinking (a failing case panics with the
//! generated inputs printed via `Debug`), and cases are generated from a
//! deterministic per-test RNG so failures are reproducible run-to-run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// `proptest::collection` — strategies over containers.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Element-count specification for [`vec`]: a fixed size or a range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "vec size range is empty");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy producing `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A vector whose elements are drawn from `element` and whose length is
    /// drawn from `size` (a `usize` or a `Range<usize>`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.usize_in(self.size.lo, self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `proptest::prelude` — the glob-import surface tests use.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

use strategy::ArbitraryStrategy;

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized + 'static {
    /// Generate one arbitrary value.
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

/// The canonical strategy for `T`: any value.
pub fn any<T: Arbitrary>() -> ArbitraryStrategy<T> {
    ArbitraryStrategy::new()
}

/// Run each `#[test] fn name(binding in strategy, ...) { body }` item as a
/// property test over [`ProptestConfig::cases`](test_runner::ProptestConfig)
/// generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg); $($rest)*);
    };
    (@cfg ($cfg:expr); $(#[test] fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                let config = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for case in 0..config.cases {
                    let _ = case;
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// Assert a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Choose uniformly between several strategies producing the same value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vecs_generate_in_bounds() {
        let mut rng = crate::test_runner::TestRng::for_test("bounds");
        let strat = crate::collection::vec((0u64..64, 0u8..8), 1..120);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((1..120).contains(&v.len()));
            for (a, b) in v {
                assert!(a < 64 && b < 8);
            }
        }
    }

    #[test]
    fn oneof_and_map_cover_all_arms() {
        #[derive(Debug, PartialEq)]
        enum Op {
            A(u8),
            B,
        }
        let strat = prop_oneof![
            (0u8..10).prop_map(Op::A),
            crate::strategy::Just(()).prop_map(|()| Op::B),
        ];
        let mut rng = crate::test_runner::TestRng::for_test("oneof");
        let (mut a, mut b) = (0, 0);
        for _ in 0..200 {
            match strat.generate(&mut rng) {
                Op::A(x) => {
                    assert!(x < 10);
                    a += 1;
                }
                Op::B => b += 1,
            }
        }
        assert!(a > 0 && b > 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn macro_smoke(xs in crate::collection::vec(any::<u8>(), 0..16), flag in any::<bool>()) {
            prop_assert!(xs.len() < 16);
            let _ = flag;
            prop_assert_eq!(xs.len(), xs.iter().copied().count());
        }
    }
}
