//! T-table AES-128: the portable fast backend.
//!
//! The classic software-AES optimization (Rijndael reference code, OpenSSL's
//! `aes_core.c`): SubBytes, ShiftRows and MixColumns are fused into four
//! 256-entry u32 lookup tables per direction, turning one round into 16
//! table loads and 16 XORs. The tables are generated at **compile time**
//! (`const fn`) from the same S-box as the reference implementation, so
//! construction costs only the key expansion.
//!
//! Byte order: the state is held as four big-endian column words
//! (`w[c] = state[4c..4c+4]`, row 0 in the most significant byte), matching
//! FIPS-197's column-major layout.

use crate::aes::{expand_key, INV_SBOX, SBOX};

/// Multiply by {02} in GF(2^8), `const` variant.
const fn ct_xtime(b: u8) -> u8 {
    (b << 1) ^ (if b & 0x80 != 0 { 0x1b } else { 0 })
}

/// GF(2^8) multiplication, `const` variant.
const fn ct_gmul(a: u8, b: u8) -> u8 {
    let mut p = 0u8;
    let mut a = a;
    let mut b = b;
    let mut i = 0;
    while i < 8 {
        if b & 1 != 0 {
            p ^= a;
        }
        a = ct_xtime(a);
        b >>= 1;
        i += 1;
    }
    p
}

/// Encryption table 0: `TE0[x] = [2,1,1,3]·S[x]` packed big-endian; tables
/// 1–3 are byte rotations of table 0.
const fn build_te0() -> [u32; 256] {
    let mut t = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let s = SBOX[i];
        t[i] = u32::from_be_bytes([ct_xtime(s), s, s, ct_xtime(s) ^ s]);
        i += 1;
    }
    t
}

/// Decryption table 0: `TD0[x] = [0e,09,0d,0b]·S⁻¹[x]` packed big-endian.
const fn build_td0() -> [u32; 256] {
    let mut t = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let s = INV_SBOX[i];
        t[i] = u32::from_be_bytes([
            ct_gmul(s, 0x0e),
            ct_gmul(s, 0x09),
            ct_gmul(s, 0x0d),
            ct_gmul(s, 0x0b),
        ]);
        i += 1;
    }
    t
}

const fn rotate_table(t: &[u32; 256], bytes: u32) -> [u32; 256] {
    let mut r = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        r[i] = t[i].rotate_right(8 * bytes);
        i += 1;
    }
    r
}

const TE0_TABLE: [u32; 256] = build_te0();
const TD0_TABLE: [u32; 256] = build_td0();
static TE0: [u32; 256] = TE0_TABLE;
static TE1: [u32; 256] = rotate_table(&TE0_TABLE, 1);
static TE2: [u32; 256] = rotate_table(&TE0_TABLE, 2);
static TE3: [u32; 256] = rotate_table(&TE0_TABLE, 3);
static TD0: [u32; 256] = TD0_TABLE;
static TD1: [u32; 256] = rotate_table(&TD0_TABLE, 1);
static TD2: [u32; 256] = rotate_table(&TD0_TABLE, 2);
static TD3: [u32; 256] = rotate_table(&TD0_TABLE, 3);

#[inline(always)]
fn b0(w: u32) -> usize {
    (w >> 24) as usize
}
#[inline(always)]
fn b1(w: u32) -> usize {
    ((w >> 16) & 0xFF) as usize
}
#[inline(always)]
fn b2(w: u32) -> usize {
    ((w >> 8) & 0xFF) as usize
}
#[inline(always)]
fn b3(w: u32) -> usize {
    (w & 0xFF) as usize
}

/// Round keys as big-endian column words.
fn words(rk: &[u8; 16]) -> [u32; 4] {
    [
        u32::from_be_bytes([rk[0], rk[1], rk[2], rk[3]]),
        u32::from_be_bytes([rk[4], rk[5], rk[6], rk[7]]),
        u32::from_be_bytes([rk[8], rk[9], rk[10], rk[11]]),
        u32::from_be_bytes([rk[12], rk[13], rk[14], rk[15]]),
    ]
}

/// Apply InvMixColumns to one round-key word (equivalent-inverse-cipher key
/// schedule, FIPS-197 §5.3.5). `TD0[SBOX[b]]` is `[0e,09,0d,0b]·b`.
#[inline]
fn inv_mix_word(w: u32) -> u32 {
    TD0[SBOX[b0(w)] as usize]
        ^ TD1[SBOX[b1(w)] as usize]
        ^ TD2[SBOX[b2(w)] as usize]
        ^ TD3[SBOX[b3(w)] as usize]
}

/// T-table AES-128 with an equivalent-inverse-cipher decryption schedule.
#[derive(Clone)]
pub(crate) struct Aes128Soft {
    enc: [[u32; 4]; 11],
    dec: [[u32; 4]; 11],
}

impl std::fmt::Debug for Aes128Soft {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        f.debug_struct("Aes128Soft").field("rounds", &10u8).finish()
    }
}

impl Aes128Soft {
    pub(crate) fn new(key: &[u8; 16]) -> Self {
        let rks = expand_key(key);
        let mut enc = [[0u32; 4]; 11];
        for (r, rk) in rks.iter().enumerate() {
            enc[r] = words(rk);
        }
        // Equivalent inverse cipher: reverse the schedule and run all but
        // the outer two round keys through InvMixColumns.
        let mut dec = [[0u32; 4]; 11];
        dec[0] = enc[10];
        dec[10] = enc[0];
        for r in 1..10 {
            let w = enc[10 - r];
            dec[r] = [
                inv_mix_word(w[0]),
                inv_mix_word(w[1]),
                inv_mix_word(w[2]),
                inv_mix_word(w[3]),
            ];
        }
        Aes128Soft { enc, dec }
    }

    pub(crate) fn encrypt_block(&self, plaintext: &[u8; 16]) -> [u8; 16] {
        let rk = &self.enc;
        let mut w0 = u32::from_be_bytes(plaintext[0..4].try_into().unwrap()) ^ rk[0][0];
        let mut w1 = u32::from_be_bytes(plaintext[4..8].try_into().unwrap()) ^ rk[0][1];
        let mut w2 = u32::from_be_bytes(plaintext[8..12].try_into().unwrap()) ^ rk[0][2];
        let mut w3 = u32::from_be_bytes(plaintext[12..16].try_into().unwrap()) ^ rk[0][3];
        for r in rk[1..10].iter() {
            let t0 = TE0[b0(w0)] ^ TE1[b1(w1)] ^ TE2[b2(w2)] ^ TE3[b3(w3)] ^ r[0];
            let t1 = TE0[b0(w1)] ^ TE1[b1(w2)] ^ TE2[b2(w3)] ^ TE3[b3(w0)] ^ r[1];
            let t2 = TE0[b0(w2)] ^ TE1[b1(w3)] ^ TE2[b2(w0)] ^ TE3[b3(w1)] ^ r[2];
            let t3 = TE0[b0(w3)] ^ TE1[b1(w0)] ^ TE2[b2(w1)] ^ TE3[b3(w2)] ^ r[3];
            (w0, w1, w2, w3) = (t0, t1, t2, t3);
        }
        // Final round: SubBytes + ShiftRows only.
        let last = &rk[10];
        let f = |a: u32, b: u32, c: u32, d: u32, k: u32| {
            u32::from_be_bytes([SBOX[b0(a)], SBOX[b1(b)], SBOX[b2(c)], SBOX[b3(d)]]) ^ k
        };
        let o0 = f(w0, w1, w2, w3, last[0]);
        let o1 = f(w1, w2, w3, w0, last[1]);
        let o2 = f(w2, w3, w0, w1, last[2]);
        let o3 = f(w3, w0, w1, w2, last[3]);
        let mut out = [0u8; 16];
        out[0..4].copy_from_slice(&o0.to_be_bytes());
        out[4..8].copy_from_slice(&o1.to_be_bytes());
        out[8..12].copy_from_slice(&o2.to_be_bytes());
        out[12..16].copy_from_slice(&o3.to_be_bytes());
        out
    }

    pub(crate) fn decrypt_block(&self, ciphertext: &[u8; 16]) -> [u8; 16] {
        let rk = &self.dec;
        let mut w0 = u32::from_be_bytes(ciphertext[0..4].try_into().unwrap()) ^ rk[0][0];
        let mut w1 = u32::from_be_bytes(ciphertext[4..8].try_into().unwrap()) ^ rk[0][1];
        let mut w2 = u32::from_be_bytes(ciphertext[8..12].try_into().unwrap()) ^ rk[0][2];
        let mut w3 = u32::from_be_bytes(ciphertext[12..16].try_into().unwrap()) ^ rk[0][3];
        for r in rk[1..10].iter() {
            // InvShiftRows rotates rows right, so the column indices walk
            // backwards.
            let t0 = TD0[b0(w0)] ^ TD1[b1(w3)] ^ TD2[b2(w2)] ^ TD3[b3(w1)] ^ r[0];
            let t1 = TD0[b0(w1)] ^ TD1[b1(w0)] ^ TD2[b2(w3)] ^ TD3[b3(w2)] ^ r[1];
            let t2 = TD0[b0(w2)] ^ TD1[b1(w1)] ^ TD2[b2(w0)] ^ TD3[b3(w3)] ^ r[2];
            let t3 = TD0[b0(w3)] ^ TD1[b1(w2)] ^ TD2[b2(w1)] ^ TD3[b3(w0)] ^ r[3];
            (w0, w1, w2, w3) = (t0, t1, t2, t3);
        }
        let last = &rk[10];
        let f = |a: u32, b: u32, c: u32, d: u32, k: u32| {
            u32::from_be_bytes([
                INV_SBOX[b0(a)],
                INV_SBOX[b1(b)],
                INV_SBOX[b2(c)],
                INV_SBOX[b3(d)],
            ]) ^ k
        };
        let o0 = f(w0, w3, w2, w1, last[0]);
        let o1 = f(w1, w0, w3, w2, last[1]);
        let o2 = f(w2, w1, w0, w3, last[2]);
        let o3 = f(w3, w2, w1, w0, last[3]);
        let mut out = [0u8; 16];
        out[0..4].copy_from_slice(&o0.to_be_bytes());
        out[4..8].copy_from_slice(&o1.to_be_bytes());
        out[8..12].copy_from_slice(&o2.to_be_bytes());
        out[12..16].copy_from_slice(&o3.to_be_bytes());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aes::Aes128Reference;
    use proptest::prelude::*;

    #[test]
    fn fips197_appendix_b() {
        let key = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, //
            0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c,
        ];
        let pt = [
            0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, //
            0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07, 0x34,
        ];
        let expected = [
            0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb, //
            0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a, 0x0b, 0x32,
        ];
        let aes = Aes128Soft::new(&key);
        assert_eq!(aes.encrypt_block(&pt), expected);
        assert_eq!(aes.decrypt_block(&expected), pt);
    }

    proptest! {
        // The tentpole differential test: T-table AES must agree with the
        // from-scratch oracle on every random (key, block) pair, in both
        // directions.
        #[test]
        fn matches_reference_oracle(key in any::<[u8; 16]>(), block in any::<[u8; 16]>()) {
            let fast = Aes128Soft::new(&key);
            let oracle = Aes128Reference::new(&key);
            let ct = fast.encrypt_block(&block);
            prop_assert_eq!(ct, oracle.encrypt_block(&block));
            prop_assert_eq!(fast.decrypt_block(&block), oracle.decrypt_block(&block));
            prop_assert_eq!(fast.decrypt_block(&ct), block);
        }
    }
}
