//! Value-generation strategies (no shrinking).

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;
use crate::Arbitrary;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erase this strategy (for [`Union`] / `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// The strategy behind [`any`](crate::any).
pub struct ArbitraryStrategy<T> {
    _marker: PhantomData<fn() -> T>,
}

impl<T> ArbitraryStrategy<T> {
    pub(crate) fn new() -> Self {
        ArbitraryStrategy {
            _marker: PhantomData,
        }
    }
}

impl<T: Arbitrary> Strategy for ArbitraryStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (u128::from(rng.next_u64()) * span) >> 64;
                (self.start as i128 + off as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (u128::from(rng.next_u64()) * span) >> 64;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// Uniform choice between strategies with identical value types
/// (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from at least one arm.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.usize_in(0, self.arms.len());
        self.arms[i].generate(rng)
    }
}
