//! Controller write/read path throughput: how fast the simulator itself
//! processes operations under each scheme (simulation speed, not modeled
//! NVM latency). One bench per headline path so regressions in the hot
//! loops (dedup lookup, metadata caches, encryption) show up immediately.

use criterion::{criterion_group, criterion_main, Criterion};
use dewrite_core::{
    CmeBaseline, DeWrite, DeWriteConfig, SecureMemory, StageCollector, SystemConfig,
};
use dewrite_nvm::LineAddr;

const KEY: &[u8; 16] = b"bench write path";

fn config() -> SystemConfig {
    SystemConfig::for_lines(1 << 14)
}

fn bench_baseline_write(c: &mut Criterion) {
    let mut mem = CmeBaseline::new(config(), KEY);
    let line = vec![0x3Cu8; 256];
    let mut i = 0u64;
    let mut t = 0u64;
    c.bench_function("baseline_write", |b| {
        b.iter(|| {
            let w = mem
                .write(LineAddr::new(i % (1 << 14)), &line, t)
                .expect("write");
            i += 1;
            t += w.total_ns + 1;
        });
    });
}

fn bench_dewrite_duplicate_write(c: &mut Criterion) {
    let mut mem = DeWrite::new(config(), DeWriteConfig::paper(), KEY);
    // Rotate through enough contents that no reference count saturates
    // (saturated lines can never be freed; see DedupIndex::apply_store).
    let pool: Vec<Vec<u8>> = (0..256u32)
        .map(|k| {
            let mut line = vec![0x77u8; 256];
            line[0..4].copy_from_slice(&k.to_le_bytes());
            line
        })
        .collect();
    let mut t = 0u64;
    for (k, line) in pool.iter().enumerate() {
        let w = mem.write(LineAddr::new(k as u64), line, t).expect("seed");
        t += w.total_ns + 1;
    }
    let mut i = 0u64;
    c.bench_function("dewrite_duplicate_write", |b| {
        b.iter(|| {
            let line = &pool[(i % 256) as usize];
            let w = mem
                .write(LineAddr::new(256 + i % (1 << 13)), line, t)
                .expect("write");
            i += 1;
            t += w.total_ns + 1;
        });
    });
}

fn bench_dewrite_unique_write(c: &mut Criterion) {
    let mut mem = DeWrite::new(config(), DeWriteConfig::paper(), KEY);
    let mut line = vec![0u8; 256];
    let mut i = 0u64;
    let mut t = 0u64;
    c.bench_function("dewrite_unique_write", |b| {
        b.iter(|| {
            line[0..8].copy_from_slice(&i.to_le_bytes());
            let w = mem
                .write(LineAddr::new(i % (1 << 14)), &line, t)
                .expect("write");
            i += 1;
            t += w.total_ns + 1;
        });
    });
}

/// Same workload as `dewrite_unique_write`, but with an event sink
/// installed. The delta against the untraced variant is the cost of
/// tracing when *enabled*; the untraced variant's delta against the seed
/// is the cost when disabled, which must stay in the noise (the hot path
/// only checks `sink.is_some()`).
fn bench_dewrite_unique_write_traced(c: &mut Criterion) {
    let mut mem = DeWrite::new(config(), DeWriteConfig::paper(), KEY);
    mem.set_event_sink(Box::new(StageCollector::default()));
    let mut line = vec![0u8; 256];
    let mut i = 0u64;
    let mut t = 0u64;
    c.bench_function("dewrite_unique_write_traced", |b| {
        b.iter(|| {
            line[0..8].copy_from_slice(&i.to_le_bytes());
            let w = mem
                .write(LineAddr::new(i % (1 << 14)), &line, t)
                .expect("write");
            i += 1;
            t += w.total_ns + 1;
        });
    });
}

fn bench_dewrite_read(c: &mut Criterion) {
    let mut mem = DeWrite::new(config(), DeWriteConfig::paper(), KEY);
    let line = vec![0x1Fu8; 256];
    for i in 0..256u64 {
        mem.write(LineAddr::new(i), &line, i * 1_000).expect("seed");
    }
    let mut i = 0u64;
    let mut t = 1_000_000u64;
    c.bench_function("dewrite_read", |b| {
        b.iter(|| {
            let r = mem.read(LineAddr::new(i % 256), t).expect("read");
            i += 1;
            t += r.latency_ns + 1;
        });
    });
}

criterion_group!(
    benches,
    bench_baseline_write,
    bench_dewrite_duplicate_write,
    bench_dewrite_unique_write,
    bench_dewrite_unique_write_traced,
    bench_dewrite_read
);
criterion_main!(benches);
