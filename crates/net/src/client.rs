//! Socket clients for the served engine: a blocking [`Control`]
//! connection for RPC-style control operations, and [`drive`] — the
//! multi-connection data-phase driver behind `loadgen --net`.
//!
//! # The determinism contract
//!
//! [`drive`] walks the trace once in order, stamping each record with
//! its **per-shard sequence number** and dealing records round-robin
//! across connections (record `i` rides connection `i mod connections`).
//! The server's shard workers reassemble each shard's exact trace
//! subsequence from the in-band sequence numbers, so the replay's merged
//! simulated report is bit-identical to the in-process run for *any*
//! connection count, thread count, or socket interleaving. Host-side
//! measurements (end-to-end latency, wall clock) live in [`NetSummary`],
//! quarantined from the simulated report.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Instant;

use dewrite_engine::{Backoff, Pacing};
use dewrite_mem::LatencyHistogram;
use dewrite_trace::{shard_of_line, TraceOp, TraceRecord};

use crate::proto::{self, FrameEvent, Hello, Request, Response};

/// What the server answered a handshake with.
#[derive(Debug, Clone, Copy)]
pub struct HelloInfo {
    /// Shard count the engine runs with.
    pub shards: usize,
    /// Per-connection in-flight window the server enforces.
    pub window: u32,
    /// Line size in bytes.
    pub line_size: u32,
    /// Workload-visible line space.
    pub lines: u64,
    /// Arena slots per shard the engine was sized with.
    pub slots_per_shard: u64,
}

/// Host-side counters the server reports through `Stats`.
#[derive(Debug, Clone, Copy)]
pub struct NetStats {
    /// Shard count (0 before the first handshake).
    pub shards: u32,
    /// Connections accepted since the server started.
    pub accepted: u64,
    /// Connections currently open.
    pub active: u64,
    /// Data operations completed.
    pub ops: u64,
    /// Typed error responses sent.
    pub errors: u64,
    /// Nanoseconds since the server started.
    pub uptime_ns: u64,
}

fn refused(what: &str, resp: Response) -> io::Error {
    match resp {
        Response::Error { code, detail } => {
            io::Error::other(format!("{what} refused ({code:?}): {detail}"))
        }
        other => io::Error::other(format!("unexpected {what} response: {other:?}")),
    }
}

/// Read one CRC-verified response frame from a blocking stream,
/// consuming it from `rbuf`.
fn read_response(stream: &mut TcpStream, rbuf: &mut Vec<u8>) -> io::Result<Response> {
    loop {
        let step = match proto::next_frame(rbuf) {
            Ok(FrameEvent::Incomplete) => None,
            Ok(FrameEvent::Frame { payload, consumed }) => {
                Some((proto::decode_response(payload), consumed))
            }
            Err(fe) => return Err(io::Error::other(fe.to_string())),
        };
        if let Some((resp, consumed)) = step {
            rbuf.drain(..consumed);
            return resp.map_err(io::Error::other);
        }
        let mut tmp = [0u8; 16 * 1024];
        let n = stream.read(&mut tmp)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        rbuf.extend_from_slice(&tmp[..n]);
    }
}

/// Connect and handshake; the stream comes back still in blocking mode.
fn handshake(addr: &str, hello: &Hello) -> io::Result<(TcpStream, Vec<u8>, HelloInfo)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.write_all(&proto::encode_request(&Request::Hello(hello.clone())))?;
    let mut rbuf = Vec::new();
    match read_response(&mut stream, &mut rbuf)? {
        Response::HelloOk {
            shards,
            window,
            line_size,
            lines,
            slots_per_shard,
            ..
        } => Ok((
            stream,
            rbuf,
            HelloInfo {
                shards: shards as usize,
                window,
                line_size,
                lines,
                slots_per_shard,
            },
        )),
        other => Err(refused("handshake", other)),
    }
}

/// Ask a server to drain and exit without handshaking first — no engine
/// generation is created if none exists yet.
///
/// # Errors
///
/// Socket errors or a typed server error.
pub fn request_shutdown(addr: &str) -> io::Result<()> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.write_all(&proto::encode_request(&Request::Shutdown))?;
    let mut rbuf = Vec::new();
    match read_response(&mut stream, &mut rbuf)? {
        Response::ShutdownOk => Ok(()),
        other => Err(refused("shutdown", other)),
    }
}

/// A blocking control connection: one request, one response, in order.
#[derive(Debug)]
pub struct Control {
    stream: TcpStream,
    rbuf: Vec<u8>,
}

impl Control {
    /// Connect, handshake, and return the session geometry. The first
    /// `Hello` a fresh server (or generation) sees creates the engine.
    ///
    /// # Errors
    ///
    /// Socket errors, a refused handshake, or a protocol violation.
    pub fn connect(addr: &str, hello: &Hello) -> io::Result<(Control, HelloInfo)> {
        let (stream, rbuf, info) = handshake(addr, hello)?;
        Ok((Control { stream, rbuf }, info))
    }

    fn rpc(&mut self, req: &Request) -> io::Result<Response> {
        self.stream.write_all(&proto::encode_request(req))?;
        read_response(&mut self.stream, &mut self.rbuf)
    }

    /// Cross-table consistency scrub on every shard; total resident
    /// lines checked.
    ///
    /// # Errors
    ///
    /// Socket errors or a typed server error (e.g. `ScrubFailed`).
    pub fn scrub(&mut self) -> io::Result<u64> {
        match self.rpc(&Request::Scrub)? {
            Response::ScrubOk { lines } => Ok(lines),
            other => Err(refused("scrub", other)),
        }
    }

    /// Flush WAL epochs and checkpoint every shard.
    ///
    /// # Errors
    ///
    /// Socket errors or a typed server error.
    pub fn flush(&mut self) -> io::Result<()> {
        match self.rpc(&Request::Flush)? {
            Response::FlushOk => Ok(()),
            other => Err(refused("flush", other)),
        }
    }

    /// The per-shard simulated reports as one JSON array in shard order
    /// — the server's exact per-shard texts, for bit-identity checks.
    ///
    /// # Errors
    ///
    /// Socket errors or a typed server error.
    pub fn report(&mut self) -> io::Result<String> {
        match self.rpc(&Request::Report)? {
            Response::ReportOk { json } => Ok(json),
            other => Err(refused("report", other)),
        }
    }

    /// Host-side server counters.
    ///
    /// # Errors
    ///
    /// Socket errors or a typed server error.
    pub fn stats(&mut self) -> io::Result<NetStats> {
        match self.rpc(&Request::Stats)? {
            Response::StatsOk {
                shards,
                accepted,
                active,
                ops,
                errors,
                uptime_ns,
            } => Ok(NetStats {
                shards,
                accepted,
                active,
                ops,
                errors,
                uptime_ns,
            }),
            other => Err(refused("stats", other)),
        }
    }

    /// Tear the engine down (drain + flush + checkpoint); the next
    /// `Hello` builds a fresh generation.
    ///
    /// # Errors
    ///
    /// Socket errors or `NotReady` when operations are still in flight.
    pub fn reset(&mut self) -> io::Result<()> {
        match self.rpc(&Request::Reset)? {
            Response::ResetOk => Ok(()),
            other => Err(refused("reset", other)),
        }
    }

    /// Ask the server to drain and exit.
    ///
    /// # Errors
    ///
    /// Socket errors or a typed server error.
    pub fn shutdown(&mut self) -> io::Result<()> {
        match self.rpc(&Request::Shutdown)? {
            Response::ShutdownOk => Ok(()),
            other => Err(refused("shutdown", other)),
        }
    }
}

/// Data-phase driver configuration.
#[derive(Debug, Clone)]
pub struct DriveOptions {
    /// Server address.
    pub addr: String,
    /// Data connections to open.
    pub connections: usize,
    /// Per-connection in-flight window (clamped to the server's).
    pub window: usize,
    /// Client threads; 0 picks `min(connections, parallelism)`.
    pub threads: usize,
    /// Closed loop (fill the window) or open loop (fixed global rate).
    pub pacing: Pacing,
}

/// What one socket-driven data phase measured — host-side only,
/// quarantined from the simulated report.
#[derive(Debug)]
pub struct NetSummary {
    /// Operations acknowledged.
    pub ops: u64,
    /// Wall-clock duration of the data phase, ns.
    pub wall_ns: u64,
    /// Data connections used.
    pub connections: usize,
    /// Per-connection window used.
    pub window: usize,
    /// Typed error responses received (0 on a healthy run).
    pub errors: u64,
    /// End-to-end issue → response latency across all connections.
    pub host_latency: LatencyHistogram,
}

impl NetSummary {
    /// Host throughput in operations per second.
    pub fn ops_per_sec(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            self.ops as f64 / (self.wall_ns as f64 / 1e9)
        }
    }
}

/// One data connection's pre-encoded sendable stream.
struct DataConn {
    stream: TcpStream,
    rbuf: Vec<u8>,
    /// Encoded request frames, in this connection's issue order.
    frames: Vec<Vec<u8>>,
    /// Open-loop issue offsets (ns since phase start), parallel to
    /// `frames`; empty for closed loop.
    sched: Vec<u64>,
    cursor: usize,
    recv: usize,
    wbuf: Vec<u8>,
    wpos: usize,
    issued: VecDeque<Instant>,
}

impl DataConn {
    fn done(&self) -> bool {
        self.recv == self.frames.len()
    }
}

struct ThreadSummary {
    ops: u64,
    errors: u64,
    host_latency: LatencyHistogram,
}

/// Drive `records` through the server and measure end to end.
///
/// Every connection handshakes with the same `hello` (the first one on a
/// fresh server creates the engine). Call this once per engine
/// generation: sequence numbers start at 0, so replaying without a
/// `Reset` in between would collide with the already-applied sequences.
///
/// # Errors
///
/// Socket errors, refused handshakes, protocol violations, or a
/// geometry mismatch between the server's handshake reply and `hello`.
///
/// # Panics
///
/// Panics if `connections` is 0 or a client thread panicked.
pub fn drive(
    opts: &DriveOptions,
    hello: &Hello,
    records: &[TraceRecord],
) -> io::Result<NetSummary> {
    assert!(opts.connections > 0, "need at least one connection");

    // Handshake every connection up front (outside the timed phase).
    let mut conns: Vec<DataConn> = Vec::with_capacity(opts.connections);
    let mut window = opts.window.max(1);
    let mut shards = 1usize;
    for c in 0..opts.connections {
        let (stream, rbuf, info) = handshake(&opts.addr, hello)?;
        if c == 0 {
            window = window.min(info.window as usize).max(1);
            shards = info.shards;
        }
        if info.line_size != hello.line_size || info.lines != hello.lines {
            return Err(io::Error::other(format!(
                "server geometry {}x{}B disagrees with the requested {}x{}B",
                info.lines, info.line_size, hello.lines, hello.line_size
            )));
        }
        conns.push(DataConn {
            stream,
            rbuf,
            frames: Vec::new(),
            sched: Vec::new(),
            cursor: 0,
            recv: 0,
            wbuf: Vec::new(),
            wpos: 0,
            issued: VecDeque::new(),
        });
    }
    // Stamp per-shard sequence numbers in trace order and deal records
    // round-robin across connections.
    let mut seqs = vec![0u64; shards];
    for (i, rec) in records.iter().enumerate() {
        let shard = shard_of_line(rec.op.addr(), shards);
        let shard_seq = seqs[shard];
        seqs[shard] += 1;
        let req = match &rec.op {
            TraceOp::Write { addr, data } => Request::Write {
                addr: addr.index(),
                shard_seq,
                gap: rec.gap_instructions,
                data: data.clone(),
            },
            TraceOp::Read { addr } => Request::Read {
                addr: addr.index(),
                shard_seq,
                gap: rec.gap_instructions,
            },
        };
        let conn = &mut conns[i % opts.connections];
        conn.frames.push(proto::encode_request(&req));
        if let Pacing::Open { ops_per_sec } = opts.pacing {
            conn.sched.push((i as f64 * 1e9 / ops_per_sec) as u64);
        }
    }
    for conn in &mut conns {
        conn.stream.set_nonblocking(true)?;
    }

    // Deal connections round-robin to client threads and sweep.
    let threads = if opts.threads > 0 {
        opts.threads
    } else {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    }
    .clamp(1, opts.connections);
    let mut lots: Vec<Vec<DataConn>> = (0..threads).map(|_| Vec::new()).collect();
    for (c, conn) in conns.into_iter().enumerate() {
        lots[c % threads].push(conn);
    }
    let start = Instant::now();
    let workers: Vec<std::thread::JoinHandle<io::Result<ThreadSummary>>> = lots
        .into_iter()
        .map(|lot| std::thread::spawn(move || sweep_loop(lot, window, start)))
        .collect();

    let mut ops = 0u64;
    let mut errors = 0u64;
    let mut host_latency = LatencyHistogram::new();
    for w in workers {
        let s = w.join().expect("client thread panicked")?;
        ops += s.ops;
        errors += s.errors;
        host_latency.merge(&s.host_latency);
    }
    Ok(NetSummary {
        ops,
        wall_ns: start.elapsed().as_nanos() as u64,
        connections: opts.connections,
        window,
        errors,
        host_latency,
    })
}

/// Sweep one thread's connections until every frame is answered.
fn sweep_loop(mut lot: Vec<DataConn>, window: usize, start: Instant) -> io::Result<ThreadSummary> {
    let mut sum = ThreadSummary {
        ops: 0,
        errors: 0,
        host_latency: LatencyHistogram::new(),
    };
    let mut parker = Backoff::new();
    loop {
        let mut progress = false;
        let mut all_done = true;
        for conn in &mut lot {
            if conn.done() {
                continue;
            }
            all_done = false;
            progress |= sweep_conn(conn, window, start, &mut sum)?;
        }
        if all_done {
            return Ok(sum);
        }
        if progress {
            parker.reset();
        } else {
            parker.wait();
        }
    }
}

fn sweep_conn(
    conn: &mut DataConn,
    window: usize,
    start: Instant,
    sum: &mut ThreadSummary,
) -> io::Result<bool> {
    let mut progress = false;

    // Issue: move frames into the write buffer up to the window (and,
    // open loop, up to the schedule).
    let now_ns = start.elapsed().as_nanos() as u64;
    while conn.cursor < conn.frames.len() && conn.issued.len() < window {
        if !conn.sched.is_empty() && conn.sched[conn.cursor] > now_ns {
            break;
        }
        conn.wbuf.extend_from_slice(&conn.frames[conn.cursor]);
        conn.issued.push_back(Instant::now());
        conn.cursor += 1;
        progress = true;
    }

    // Flush.
    while conn.wpos < conn.wbuf.len() {
        match conn.stream.write(&conn.wbuf[conn.wpos..]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "server closed the connection mid-phase",
                ))
            }
            Ok(n) => {
                conn.wpos += n;
                progress = true;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    if conn.wpos == conn.wbuf.len() {
        conn.wbuf.clear();
        conn.wpos = 0;
    }

    // Read.
    let mut tmp = [0u8; 16 * 1024];
    loop {
        match conn.stream.read(&mut tmp) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection mid-phase",
                ))
            }
            Ok(n) => {
                conn.rbuf.extend_from_slice(&tmp[..n]);
                progress = true;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }

    // Decode: responses arrive strictly in this connection's request
    // order, so each one answers the oldest issued frame.
    let mut off = 0usize;
    loop {
        let step = match proto::next_frame(&conn.rbuf[off..]) {
            Ok(FrameEvent::Incomplete) => None,
            Ok(FrameEvent::Frame { payload, consumed }) => {
                Some((proto::decode_response(payload), consumed))
            }
            Err(fe) => return Err(io::Error::other(fe.to_string())),
        };
        let Some((resp, consumed)) = step else { break };
        off += consumed;
        let resp = resp.map_err(io::Error::other)?;
        let issued = conn
            .issued
            .pop_front()
            .ok_or_else(|| io::Error::other("response without an outstanding request"))?;
        sum.host_latency.record(issued.elapsed().as_nanos() as u64);
        conn.recv += 1;
        progress = true;
        match resp {
            Response::WriteOk { .. } | Response::ReadOk { .. } => sum.ops += 1,
            Response::Error { .. } => sum.errors += 1,
            other => {
                return Err(io::Error::other(format!(
                    "unexpected data-phase response: {other:?}"
                )))
            }
        }
    }
    conn.rbuf.drain(..off);
    Ok(progress)
}
