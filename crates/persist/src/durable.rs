//! Epoch-batched durable logging: [`EpochLog`] (the reusable policy engine,
//! shared with the engine's per-shard controllers) and [`DurableDeWrite`]
//! (a `DeWrite` whose metadata survives a crash).
//!
//! SecPM-style epoch batching: instead of one log write per metadata
//! update, the [`MetaOp`]s of `epoch_writes` consecutive data writes are
//! buffered and appended (then fsynced) as one record. A crash loses at
//! most the open epoch — the same exposure window the core's
//! `MetadataPersistence::EpochFlush` policy charges to simulated time.
//! Host-side logging itself is *never* charged: simulated results are
//! bit-identical with persistence on or off.

use std::path::Path;

use dewrite_core::{
    DeWrite, DeWriteConfig, MetaOp, ReadResult, SecureMemory, Snapshot, SystemConfig, WriteResult,
};
use dewrite_nvm::LineAddr;

use crate::checkpoint::Checkpoint;
use crate::store::MetaStore;
use crate::wal::WalRecord;
use crate::PersistError;

/// Tuning knobs of the durable layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurableOptions {
    /// Data writes per epoch record (the atomic unit of loss).
    pub epoch_writes: u32,
    /// Epochs between checkpoints (WAL segment rotation).
    pub checkpoint_epochs: u32,
    /// `fsync` after every append/checkpoint. Disable only in tests that
    /// model the medium with in-memory copies of the files.
    pub sync: bool,
}

impl Default for DurableOptions {
    fn default() -> Self {
        DurableOptions {
            epoch_writes: 16,
            checkpoint_epochs: 8,
            sync: true,
        }
    }
}

/// The epoch-batching state machine over a [`MetaStore`].
///
/// Callers feed it each data write's journal ops via
/// [`record_write`](Self::record_write); it appends one WAL record per
/// epoch and reports when a checkpoint is due (the caller supplies the
/// snapshot, since only it can capture one).
#[derive(Debug)]
pub struct EpochLog {
    store: MetaStore,
    pending: Vec<MetaOp>,
    /// Total data writes observed.
    writes: u64,
    /// Data writes covered by appended records (plus the base checkpoint).
    flushed_writes: u64,
    epochs_since_checkpoint: u32,
    opts: DurableOptions,
}

impl EpochLog {
    /// Create a fresh log in `dir`, anchored on a checkpoint of
    /// `initial` (state before any logged write).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn create(
        dir: &Path,
        fingerprint: u64,
        initial: &Snapshot,
        opts: DurableOptions,
    ) -> std::io::Result<Self> {
        let store = MetaStore::create(
            dir,
            fingerprint,
            &Checkpoint {
                writes_covered: 0,
                snapshot: initial.clone(),
            },
            opts.sync,
        )?;
        Ok(EpochLog {
            store,
            pending: Vec::new(),
            writes: 0,
            flushed_writes: 0,
            epochs_since_checkpoint: 0,
            opts,
        })
    }

    /// Feed one data write's journal ops. Returns `true` when a checkpoint
    /// is due — the caller should capture a snapshot and call
    /// [`checkpoint`](Self::checkpoint).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from an epoch flush.
    pub fn record_write(&mut self, ops: impl IntoIterator<Item = MetaOp>) -> std::io::Result<bool> {
        self.pending.extend(ops);
        self.writes += 1;
        if self.writes - self.flushed_writes >= u64::from(self.opts.epoch_writes.max(1)) {
            self.flush()?;
            return Ok(self.epochs_since_checkpoint >= self.opts.checkpoint_epochs.max(1));
        }
        Ok(false)
    }

    /// Append the open (partial) epoch, if any, as a record and fsync.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn flush(&mut self) -> std::io::Result<()> {
        if self.writes == self.flushed_writes {
            return Ok(());
        }
        let record = WalRecord {
            base_writes: self.flushed_writes,
            writes_covered: self.writes,
            ops: std::mem::take(&mut self.pending),
        };
        self.store.append(&record)?;
        self.flushed_writes = self.writes;
        self.epochs_since_checkpoint += 1;
        Ok(())
    }

    /// Flush, then rotate to a new checkpoint capturing `snapshot` (which
    /// must reflect *all* writes fed so far).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn checkpoint(&mut self, snapshot: &Snapshot) -> std::io::Result<()> {
        self.flush()?;
        self.store.rotate(&Checkpoint {
            writes_covered: self.flushed_writes,
            snapshot: snapshot.clone(),
        })?;
        self.epochs_since_checkpoint = 0;
        Ok(())
    }

    /// Shutdown durability: flush the open epoch, then force the store's
    /// files to stable storage even when the log runs with `sync: false`.
    /// Unlike [`checkpoint`](Self::checkpoint) this writes no new
    /// checkpoint — callers that want one checkpoint first.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn sync_all(&mut self) -> std::io::Result<()> {
        self.flush()?;
        self.store.sync_all()
    }

    /// Data writes not yet covered by a durable record: the crash-loss
    /// exposure right now (0 ≤ exposure < `epoch_writes`).
    pub fn unflushed_writes(&self) -> u64 {
        self.writes - self.flushed_writes
    }

    /// Total data writes fed to the log.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// The underlying store (directory, sequence).
    pub fn store(&self) -> &MetaStore {
        &self.store
    }
}

/// A [`DeWrite`] whose dedup metadata is made durable through an
/// [`EpochLog`]: every write's metadata mutations are journaled, batched
/// into epoch WAL records, and periodically checkpointed, so
/// [`DeWrite::recover`](crate::RecoverDeWrite::recover) can rebuild the
/// controller after a crash.
#[derive(Debug)]
pub struct DurableDeWrite {
    mem: DeWrite,
    log: EpochLog,
}

impl DurableDeWrite {
    /// Build a fresh controller persisting to `dir`.
    ///
    /// # Errors
    ///
    /// Propagates store-creation failures.
    pub fn create(
        dir: &Path,
        config: SystemConfig,
        dw: DeWriteConfig,
        key: &[u8; 16],
        opts: DurableOptions,
    ) -> Result<Self, PersistError> {
        let mut mem = DeWrite::new(config, dw, key);
        mem.set_meta_journal(true);
        let log = EpochLog::create(dir, dw.fingerprint(), &mem.snapshot(), opts)?;
        Ok(DurableDeWrite { mem, log })
    }

    /// Write a line (the durable analogue of [`SecureMemory::write`]):
    /// applies the write, journals its metadata mutations, and flushes /
    /// checkpoints per the epoch policy.
    ///
    /// # Errors
    ///
    /// [`PersistError::Memory`] for address/size rejections,
    /// [`PersistError::Io`] for log failures.
    pub fn write(
        &mut self,
        addr: LineAddr,
        data: &[u8],
        now_ns: u64,
    ) -> Result<WriteResult, PersistError> {
        let result = self
            .mem
            .write(addr, data, now_ns)
            .map_err(|e| PersistError::Memory(e.to_string()))?;
        let ops = self.mem.drain_meta_ops();
        if self.log.record_write(ops)? {
            let snapshot = self.mem.snapshot();
            self.log.checkpoint(&snapshot)?;
        }
        Ok(result)
    }

    /// Read a line (pass-through).
    ///
    /// # Errors
    ///
    /// [`PersistError::Memory`] for address rejections.
    pub fn read(&mut self, addr: LineAddr, now_ns: u64) -> Result<ReadResult, PersistError> {
        self.mem
            .read(addr, now_ns)
            .map_err(|e| PersistError::Memory(e.to_string()))
    }

    /// Force the open epoch to the log (bounding crash loss to zero until
    /// the next write).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn flush(&mut self) -> std::io::Result<()> {
        self.log.flush()
    }

    /// Force a checkpoint of the current state.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn checkpoint(&mut self) -> std::io::Result<()> {
        let snapshot = self.mem.snapshot();
        self.log.checkpoint(&snapshot)
    }

    /// The wrapped controller.
    pub fn mem(&self) -> &DeWrite {
        &self.mem
    }

    /// The epoch log (exposure/statistics).
    pub fn log(&self) -> &EpochLog {
        &self.log
    }

    /// Clean shutdown: flush the open epoch, write a final checkpoint, and
    /// hand back the controller (snapshot + device via its `power_off`).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors (the controller is lost in that case,
    /// as it would be on a real failed shutdown — recovery handles it).
    pub fn shutdown(mut self) -> Result<DeWrite, PersistError> {
        self.flush()?;
        let snapshot = self.mem.snapshot();
        self.log.checkpoint(&snapshot)?;
        Ok(self.mem)
    }
}
