//! The trace-driven system simulator.
//!
//! Replays a workload trace against a [`SecureMemory`] scheme with an
//! in-order core model:
//!
//! * the core retires each record's instruction gap at the base CPI;
//! * **reads stall the core** for their full critical-path latency (demand
//!   misses);
//! * **writes stall the core** for the controller critical path
//!   (detection/encryption); the NVM array write drains asynchronously
//!   through the write queue, except that
//!   - the write queue has finite depth — when it is full the core stalls
//!     until the oldest write completes (back-pressure), and
//!   - every `persist_every`-th write is a persist barrier: the core stalls
//!     until all outstanding writes are durable (epoch persistence, the
//!     §III ordering requirement).
//!
//! Reported **write latency** is issue → durable (detection only, for
//! eliminated duplicates), the quantity behind Fig. 14; bank queueing from
//! surviving writes is what slows both metrics in the baseline.

use std::collections::VecDeque;

use dewrite_mem::{CoreModel, LatencyHistogram, LatencyStats};
use dewrite_nvm::NvmError;
use dewrite_trace::{TraceOp, TraceRecord};

use crate::config::SystemConfig;
use crate::metrics::RunReport;
use crate::schemes::SecureMemory;
use crate::trace::StageCollector;

/// Trace-replay engine, configured from a [`SystemConfig`].
#[derive(Debug, Clone)]
pub struct Simulator {
    core: dewrite_mem::CoreConfig,
    cores: usize,
    write_queue_depth: usize,
    persist_every: Option<u32>,
    read_stall_fraction: f64,
}

impl Simulator {
    /// Build a simulator with the system's core/persistence parameters.
    pub fn new(config: &SystemConfig) -> Self {
        Simulator {
            core: config.core,
            cores: config.cores.max(1),
            write_queue_depth: config.write_queue_depth,
            persist_every: config.persist_every,
            read_stall_fraction: config.read_stall_fraction.clamp(0.0, 1.0),
        }
    }

    /// Replay `warmup` (uncounted) then `trace` against `mem`, returning the
    /// measured-window report.
    ///
    /// # Errors
    ///
    /// Propagates the first scheme error (out-of-range address, wrong line
    /// size) — traces generated for the same configuration never trigger
    /// these.
    pub fn run<M, I>(
        &self,
        mem: &mut M,
        app: &str,
        warmup: &[TraceRecord],
        trace: I,
    ) -> Result<RunReport, NvmError>
    where
        M: SecureMemory + ?Sized,
        I: IntoIterator<Item = TraceRecord>,
    {
        // Warmup: populate memory contents without measuring.
        let mut t = 0u64;
        for rec in warmup {
            if let TraceOp::Write { addr, data } = &rec.op {
                let w = mem.write(*addr, data, t)?;
                t = t.max(w.nvm_finish_ns.unwrap_or(t)) + 1;
            }
        }

        // Observe the measured window only: the collector goes in after
        // warmup and comes back out with the per-stage breakdown.
        mem.set_event_sink(Box::new(StageCollector::default()));

        // Snapshot counters so the report covers the measured window only.
        let base_before = mem.base_metrics();
        let energy_before = *mem.device().energy();
        let wear_flips_before = mem.device().wear().total_bits_flipped();
        let data_writes_before = mem.device().writes() - base_before.meta_nvm_writes;
        let line_bits = mem.device().config().line_bits();

        // One logical core per hardware context. The next record always
        // executes on the least-advanced context, so contexts stay in rough
        // lockstep and their memory requests interleave at the controller —
        // this is where bank contention (and DeWrite's queueing relief)
        // comes from.
        let mut cores: Vec<CoreModel> =
            (0..self.cores).map(|_| CoreModel::new(self.core)).collect();
        let start_ns = t;
        let mut write_latency = LatencyStats::new();
        let mut write_latency_eliminated = LatencyStats::new();
        let mut write_latency_stored = LatencyStats::new();
        let mut write_critical = LatencyStats::new();
        let mut read_latency = LatencyStats::new();
        let mut write_latency_hist = LatencyHistogram::new();
        let mut read_latency_hist = LatencyHistogram::new();
        let mut outstanding: VecDeque<u64> = VecDeque::new();
        let mut writes_since_persist = vec![0u32; self.cores];
        let mut read_stall_credit = 0.0f64;

        for rec in trace {
            let ctx = cores
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| a.elapsed_ns().total_cmp(&b.elapsed_ns()))
                .map(|(i, _)| i)
                .expect("at least one core");
            let core = &mut cores[ctx];
            core.execute(rec.gap_instructions);
            let now = start_ns + core.elapsed_ns() as u64;

            // Retire completed writes.
            while outstanding.front().is_some_and(|&f| f <= now) {
                outstanding.pop_front();
            }

            match rec.op {
                TraceOp::Read { addr } => {
                    let r = mem.read(addr, now)?;
                    read_latency.record(r.latency_ns);
                    read_latency_hist.record(r.latency_ns);
                    // Only a fraction of reads are demand misses on the
                    // critical path; the rest are overlapped (OoO window /
                    // prefetch) and merely occupy the memory system.
                    read_stall_credit += self.read_stall_fraction;
                    if read_stall_credit >= 1.0 {
                        read_stall_credit -= 1.0;
                        core.stall_ns(r.latency_ns);
                    }
                }
                TraceOp::Write { addr, data } => {
                    let w = mem.write(addr, &data, now)?;
                    write_latency.record(w.total_ns);
                    write_latency_hist.record(w.total_ns);
                    if w.eliminated {
                        write_latency_eliminated.record(w.total_ns);
                    } else {
                        write_latency_stored.record(w.total_ns);
                    }
                    write_critical.record(w.critical_ns);
                    core.stall_ns(w.critical_ns);

                    if let Some(finish) = w.nvm_finish_ns {
                        outstanding.push_back(finish);
                        // Back-pressure: a full write queue stalls the
                        // issuing core until the oldest write drains.
                        while outstanding.len() > self.write_queue_depth {
                            let oldest = outstanding.pop_front().expect("nonempty");
                            let now = start_ns + core.elapsed_ns() as u64;
                            if oldest > now {
                                core.stall_ns(oldest - now);
                            }
                        }
                    }

                    // Epoch persistence: this context periodically waits for
                    // all outstanding writes to become durable.
                    writes_since_persist[ctx] += 1;
                    if let Some(n) = self.persist_every {
                        if writes_since_persist[ctx] >= n {
                            writes_since_persist[ctx] = 0;
                            if let Some(&last) = outstanding.back() {
                                let core = &mut cores[ctx];
                                let now = start_ns + core.elapsed_ns() as u64;
                                if last > now {
                                    core.stall_ns(last - now);
                                }
                            }
                        }
                    }
                }
            }
        }

        // Final drain so durability is charged (on the most-advanced core).
        if let Some(&last) = outstanding.back() {
            let core = cores
                .iter_mut()
                .max_by(|a, b| a.elapsed_ns().total_cmp(&b.elapsed_ns()))
                .expect("at least one core");
            let now = start_ns + core.elapsed_ns() as u64;
            if last > now {
                core.stall_ns(last - now);
            }
        }
        let instructions: u64 = cores.iter().map(CoreModel::instructions).sum();
        let wall_cycles = cores.iter().map(CoreModel::cycles).fold(0.0f64, f64::max);

        let stage_breakdown = mem
            .take_event_sink()
            .and_then(|mut sink| {
                sink.as_any_mut()
                    .downcast_mut::<StageCollector>()
                    .map(|c| std::mem::take(&mut c.breakdown))
            })
            .unwrap_or_default();

        let base_after = mem.base_metrics();
        let energy_after = *mem.device().energy();
        let base = delta_base(base_before, base_after);
        let nvm_data_writes =
            (mem.device().writes() - base_after.meta_nvm_writes) - data_writes_before;
        let flips = mem.device().wear().total_bits_flipped() - wear_flips_before;
        let total_write_bits = mem
            .device()
            .writes()
            .saturating_sub(data_writes_before + base_before.meta_nvm_writes)
            * line_bits;

        Ok(RunReport {
            scheme: mem.name(),
            app: app.to_string(),
            instructions,
            cycles: wall_cycles,
            ipc: if wall_cycles == 0.0 {
                0.0
            } else {
                instructions as f64 / wall_cycles
            },
            write_latency,
            write_latency_eliminated,
            write_latency_stored,
            read_latency,
            write_critical,
            base,
            energy: delta_energy(energy_before, energy_after),
            nvm_data_writes,
            bit_flip_ratio: if total_write_bits == 0 {
                0.0
            } else {
                flips as f64 / total_write_bits as f64
            },
            dewrite: None,
            write_latency_hist,
            read_latency_hist,
            stage_breakdown,
        })
    }
}

fn delta_base(
    before: crate::schemes::BaseMetrics,
    after: crate::schemes::BaseMetrics,
) -> crate::schemes::BaseMetrics {
    crate::schemes::BaseMetrics {
        writes: after.writes - before.writes,
        writes_eliminated: after.writes_eliminated - before.writes_eliminated,
        coalesced_writes: after.coalesced_writes - before.coalesced_writes,
        reads: after.reads - before.reads,
        aes_line_ops: after.aes_line_ops - before.aes_line_ops,
        hash_ops: after.hash_ops - before.hash_ops,
        verify_reads: after.verify_reads - before.verify_reads,
        meta_nvm_reads: after.meta_nvm_reads - before.meta_nvm_reads,
        meta_nvm_writes: after.meta_nvm_writes - before.meta_nvm_writes,
    }
}

fn delta_energy(
    before: dewrite_nvm::EnergyBreakdown,
    after: dewrite_nvm::EnergyBreakdown,
) -> dewrite_nvm::EnergyBreakdown {
    dewrite_nvm::EnergyBreakdown {
        nvm_read_pj: after.nvm_read_pj - before.nvm_read_pj,
        nvm_write_pj: after.nvm_write_pj - before.nvm_write_pj,
        aes_pj: after.aes_pj - before.aes_pj,
        dedup_pj: after.dedup_pj - before.dedup_pj,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DeWriteConfig, SystemConfig};
    use crate::schemes::{CmeBaseline, DeWrite};
    use dewrite_trace::{app_by_name, TraceGenerator};

    const KEY: &[u8; 16] = b"simulator key 16";

    fn small_config(lines: u64) -> SystemConfig {
        SystemConfig::for_lines(lines)
    }

    fn run_app(app: &str, writes: usize) -> (RunReport, RunReport) {
        let mut profile = app_by_name(app).unwrap();
        profile.working_set_lines = 1 << 12;
        profile.content_pool_size = 256;
        let config = small_config(profile.working_set_lines + 512);
        let sim = Simulator::new(&config);

        let gen1 = TraceGenerator::new(profile.clone(), 256, 7);
        let warmup = gen1.warmup_records();
        // Remap warmup addresses into range (generator reserves them above
        // the working set, which fits: ws + pool + 1 < lines).
        let trace: Vec<_> = gen1.take(writes).collect();

        let mut dewrite = DeWrite::new(config.clone(), DeWriteConfig::paper(), KEY);
        let r1 = sim
            .run(&mut dewrite, app, &warmup, trace.iter().cloned())
            .unwrap();

        let mut baseline = CmeBaseline::new(config, KEY);
        let r2 = sim
            .run(&mut baseline, app, &warmup, trace.iter().cloned())
            .unwrap();
        (r1, r2)
    }

    #[test]
    fn dewrite_beats_baseline_on_duplicate_heavy_app() {
        let (dw, base) = run_app("lbm", 4_000); // ~95% duplicates
        assert!(
            dw.write_reduction() > 0.8,
            "reduction {}",
            dw.write_reduction()
        );
        assert_eq!(base.write_reduction(), 0.0);
        assert!(
            dw.write_speedup_vs(&base) > 1.5,
            "speedup {}",
            dw.write_speedup_vs(&base)
        );
        assert!(dw.relative_ipc_vs(&base) > 1.0);
        assert!(
            dw.relative_energy_vs(&base) < 1.0,
            "energy {}",
            dw.relative_energy_vs(&base)
        );
    }

    #[test]
    fn low_duplication_app_shows_modest_gains() {
        let (dw, base) = run_app("vips", 3_000); // ~19% duplicates
        assert!(
            dw.write_reduction() < 0.35,
            "reduction {}",
            dw.write_reduction()
        );
        // Still correct and not pathologically slower.
        let speedup = dw.write_speedup_vs(&base);
        assert!(speedup > 0.7, "speedup {speedup}");
    }

    #[test]
    fn report_counts_measured_window_only() {
        let (dw, _) = run_app("mcf", 1_000);
        // Trace writes only (warmup excluded): the generator interleaves
        // reads at ~3/write, so writes ≈ 1000 of the mixed records... the
        // simulator consumed exactly the records we passed.
        assert!(dw.base.writes > 0);
        assert!(dw.instructions > 0);
        assert!(dw.ipc > 0.0);
        assert!(dw.write_latency.count() == dw.base.writes);
        assert!(dw.read_latency.count() == dw.base.reads);
    }

    #[test]
    fn identical_runs_are_deterministic() {
        let (r1, _) = run_app("gcc", 1_500);
        let (r2, _) = run_app("gcc", 1_500);
        assert_eq!(r1.base, r2.base);
        assert_eq!(r1.write_latency, r2.write_latency);
        assert_eq!(r1.read_latency, r2.read_latency);
        assert_eq!(r1.ipc.to_bits(), r2.ipc.to_bits());
        assert_eq!(r1.energy, r2.energy);
    }

    #[test]
    fn empty_trace_produces_empty_report() {
        let config = small_config(256);
        let mut mem = CmeBaseline::new(config.clone(), KEY);
        let r = Simulator::new(&config)
            .run(&mut mem, "empty", &[], std::iter::empty())
            .unwrap();
        assert_eq!(r.base.writes, 0);
        assert_eq!(r.base.reads, 0);
        assert_eq!(r.instructions, 0);
        assert_eq!(r.ipc, 0.0);
    }

    #[test]
    fn more_contexts_increase_contention() {
        let mut profile = app_by_name("bzip2").unwrap();
        profile.working_set_lines = 1 << 10;
        profile.content_pool_size = 64;
        let trace: Vec<_> = TraceGenerator::new(profile.clone(), 256, 4)
            .take(3_000)
            .collect();
        let warmup = TraceGenerator::new(profile, 256, 4).warmup_records();
        let run = |cores: usize| {
            let mut config = small_config((1 << 10) + 128);
            config.cores = cores;
            let mut mem = CmeBaseline::new(config.clone(), KEY);
            Simulator::new(&config)
                .run(&mut mem, "bzip2", &warmup, trace.iter().cloned())
                .unwrap()
        };
        let one = run(1);
        let many = run(16);
        // More concurrent request streams = more bank queueing per request.
        assert!(
            many.write_latency.mean_ns() > one.write_latency.mean_ns(),
            "16-ctx {} vs 1-ctx {}",
            many.write_latency.mean_ns(),
            one.write_latency.mean_ns()
        );
    }

    #[test]
    fn read_stall_fraction_throttles_arrival() {
        let mut profile = app_by_name("mcf").unwrap();
        profile.working_set_lines = 1 << 10;
        profile.content_pool_size = 64;
        let trace: Vec<_> = TraceGenerator::new(profile.clone(), 256, 9)
            .take(4_000)
            .collect();
        let warmup = TraceGenerator::new(profile, 256, 9).warmup_records();
        let run = |fraction: f64| {
            let mut config = small_config((1 << 10) + 128);
            config.read_stall_fraction = fraction;
            let mut mem = CmeBaseline::new(config.clone(), KEY);
            Simulator::new(&config)
                .run(&mut mem, "mcf", &warmup, trace.iter().cloned())
                .unwrap()
        };
        let all_stall = run(1.0);
        let half_stall = run(0.25);
        // Fewer stalling reads -> higher arrival rate -> more queueing.
        assert!(
            half_stall.write_latency.mean_ns() > all_stall.write_latency.mean_ns(),
            "0.25 {} vs 1.0 {}",
            half_stall.write_latency.mean_ns(),
            all_stall.write_latency.mean_ns()
        );
        // And higher throughput (IPC) despite it.
        assert!(half_stall.ipc > all_stall.ipc);
    }

    #[test]
    fn eliminated_and_stored_latencies_partition_the_writes() {
        let (dw, _) = run_app("mcf", 2_000);
        assert_eq!(
            dw.write_latency.count(),
            dw.write_latency_eliminated.count() + dw.write_latency_stored.count()
        );
        assert!(dw.write_latency_eliminated.mean_ns() < dw.write_latency_stored.mean_ns());
    }

    #[test]
    fn report_includes_stage_breakdown_and_histograms() {
        use crate::trace::Stage;
        let (dw, base) = run_app("mcf", 2_000);
        assert_eq!(dw.stage_breakdown.writes(), dw.base.writes);
        assert_eq!(dw.write_latency_hist.count(), dw.write_latency.count());
        assert_eq!(dw.read_latency_hist.count(), dw.read_latency.count());
        assert!(dw.write_latency_hist.p99_ns() >= dw.write_latency_hist.p50_ns());
        assert!(dw.stage_breakdown.stage(Stage::Digest).count() > 0);
        assert!(dw.stage_breakdown.stage(Stage::Metadata).count() > 0);
        // The baseline traces too, with its own (smaller) stage set.
        assert_eq!(base.stage_breakdown.writes(), base.base.writes);
        assert!(base.stage_breakdown.stage(Stage::Encrypt).count() > 0);
        assert_eq!(base.stage_breakdown.stage(Stage::Digest).count(), 0);
    }

    #[test]
    fn persist_barriers_slow_the_core() {
        let mut profile = app_by_name("bzip2").unwrap();
        profile.working_set_lines = 1 << 10;
        profile.content_pool_size = 64;
        let mut strict = small_config(profile.working_set_lines + 128);
        strict.persist_every = Some(1);
        let mut relaxed = strict.clone();
        relaxed.persist_every = None;

        let trace: Vec<_> = TraceGenerator::new(profile.clone(), 256, 3)
            .take(2_000)
            .collect();
        let warmup = TraceGenerator::new(profile, 256, 3).warmup_records();

        let mut m1 = CmeBaseline::new(strict.clone(), KEY);
        let r1 = Simulator::new(&strict)
            .run(&mut m1, "bzip2", &warmup, trace.iter().cloned())
            .unwrap();
        let mut m2 = CmeBaseline::new(relaxed.clone(), KEY);
        let r2 = Simulator::new(&relaxed)
            .run(&mut m2, "bzip2", &warmup, trace.iter().cloned())
            .unwrap();
        assert!(r1.ipc < r2.ipc, "strict {} vs relaxed {}", r1.ipc, r2.ipc);
    }
}
