//! The hot-path engine overhaul is host-speed only: forced-portable and
//! hardware-dispatched engines must produce bit-identical `RunReport`s.
//!
//! Backends are chosen when an engine is constructed, so toggling
//! `set_portable_only` between simulation runs exercises both paths in one
//! process (the same switch CI flips via `DEWRITE_PORTABLE=1`).

use dewrite_bench::runner::{run_scheme, Scale, SchemeKind, Workload};
use dewrite_trace::app_by_name;

const SEED: u64 = 0xDE11_A11C;

/// Serialize the full report for one (scheme, app) run.
fn report_json(kind: SchemeKind, portable: bool) -> String {
    dewrite_crypto::set_portable_only(portable);
    dewrite_hashes::set_portable_only(portable);
    let profile = app_by_name("dedup").expect("known app");
    let workload = Workload::generate(&profile, Scale::quick(), SEED);
    let report = run_scheme(kind, &workload);
    // Leave the process-wide switch as we found it.
    dewrite_crypto::set_portable_only(false);
    dewrite_hashes::set_portable_only(false);
    report.to_json().to_string()
}

#[test]
fn dewrite_report_identical_portable_vs_fast() {
    let portable = report_json(SchemeKind::DeWrite, true);
    let fast = report_json(SchemeKind::DeWrite, false);
    assert_eq!(
        portable, fast,
        "RunReport differs between portable and hardware engines"
    );
}

#[test]
fn baseline_report_identical_portable_vs_fast() {
    let portable = report_json(SchemeKind::Baseline, true);
    let fast = report_json(SchemeKind::Baseline, false);
    assert_eq!(portable, fast);
}

#[test]
fn repeated_fast_runs_are_identical() {
    // Dispatch itself must be deterministic run-to-run, not just
    // portable-vs-fast.
    let a = report_json(SchemeKind::DeWrite, false);
    let b = report_json(SchemeKind::DeWrite, false);
    assert_eq!(a, b);
}

// --- sharded engine: thread-count-independent determinism -----------------

use dewrite_engine::{run as engine_run, EngineConfig, EngineRun};
use dewrite_trace::{TraceGenerator, TraceRecord};

/// A threaded engine run over a fixed mcf-shaped trace.
fn engine_trace(ops: usize, seed: u64) -> (Vec<TraceRecord>, u64, u64) {
    let mut profile = app_by_name("mcf").expect("known app");
    profile.working_set_lines = 4096;
    profile.content_pool_size = 128;
    let mut gen = TraceGenerator::new(profile, 256, seed);
    let lines = gen.required_lines();
    let mut records = gen.warmup_records();
    records.extend(gen.by_ref().take(ops));
    let writes = records.iter().filter(|r| r.op.is_write()).count() as u64;
    (records, lines, writes)
}

fn engine_go(records: &[TraceRecord], lines: u64, writes: u64, shards: usize) -> EngineRun {
    let mut config = EngineConfig::for_workload(shards, 256, lines, writes);
    config.scrub = true;
    engine_run(&config, "mcf", records.to_vec())
}

// --- golden reports: flat-table refactors must not move simulated ns -------

/// Compare `actual` against the committed golden file, byte for byte.
///
/// The goldens were captured from the seed (pre-flat-table) structures, so
/// any simulated-time drift introduced by a host-side data-structure change
/// fails here. Regenerate deliberately with
/// `DEWRITE_REGEN_GOLDEN=1 cargo test -p dewrite-bench --test determinism`.
fn golden_check(name: &str, actual: &str) {
    let path = format!("{}/tests/golden/{name}", env!("CARGO_MANIFEST_DIR"));
    if std::env::var("DEWRITE_REGEN_GOLDEN").is_ok() {
        std::fs::write(&path, format!("{actual}\n")).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden {path}: {e}; regenerate with DEWRITE_REGEN_GOLDEN=1")
    });
    assert_eq!(
        expected.trim_end(),
        actual,
        "{name} drifted from the pre-refactor golden report; if the change \
         is intentional, regenerate with DEWRITE_REGEN_GOLDEN=1 cargo test \
         -p dewrite-bench --test determinism"
    );
}

#[test]
fn sim_reports_match_pre_refactor_goldens() {
    golden_check(
        "report_sim_dewrite.json",
        &report_json(SchemeKind::DeWrite, false),
    );
    golden_check(
        "report_sim_baseline.json",
        &report_json(SchemeKind::Baseline, false),
    );
}

#[test]
fn engine_merged_reports_match_pre_refactor_goldens() {
    let (records, lines, writes) = engine_trace(6000, SEED);
    for shards in [1usize, 2, 4] {
        let run = engine_go(&records, lines, writes, shards);
        for s in &run.shards {
            assert!(matches!(s.scrub, Some(Ok(_))), "shard {} scrub", s.shard);
        }
        golden_check(
            &format!("report_engine_{shards}shard.json"),
            &run.merged.to_json().to_string(),
        );
    }
}

#[test]
fn engine_merged_report_is_bit_identical_across_threaded_runs() {
    // Same seed + same shard count => the merged simulated RunReport must
    // be bit-identical run to run, even though real threads race on wall
    // time, queue occupancy, and interleaving.
    let (records, lines, writes) = engine_trace(6000, SEED);
    let a = engine_go(&records, lines, writes, 4);
    let b = engine_go(&records, lines, writes, 4);
    assert_eq!(a.merged, b.merged, "merged RunReport drifted across runs");
    assert_eq!(
        a.merged.to_json().to_string(),
        b.merged.to_json().to_string(),
        "serialized merged RunReport drifted across runs"
    );
}

#[test]
fn engine_merged_report_is_batch_and_producer_invariant() {
    // With coalescing off, the simulated merge is a pure function of
    // (trace, shard count): batch size and producer count only change how
    // requests move through the queues, never what the controllers see.
    let (records, lines, writes) = engine_trace(6000, SEED ^ 0x0BA7);
    for shards in [1usize, 2, 4] {
        let mut config = EngineConfig::for_workload(shards, 256, lines, writes);
        config.scrub = true;
        config.batch = 1;
        config.producers = 1;
        let baseline = engine_run(&config, "mcf", records.to_vec());
        let baseline_json = baseline.merged.to_json().to_string();
        for (batch, producers) in [(8usize, 2usize), (64, 0), (64, 4)] {
            config.batch = batch;
            config.producers = producers;
            let other = engine_run(&config, "mcf", records.to_vec());
            assert_eq!(
                baseline_json,
                other.merged.to_json().to_string(),
                "shards {shards}: batch {batch} x producers {producers} \
                 changed the merged report"
            );
        }
    }
}

#[test]
fn engine_coalescing_accounts_every_write_and_scrubs_clean() {
    use dewrite_nvm::LineAddr;
    use dewrite_trace::TraceOp;

    // A hand-built rewrite storm: every line in a tiny window is written
    // repeatedly, so a coalescing buffer must absorb most of the traffic.
    let mut records = Vec::new();
    for round in 0..200u64 {
        for addr in 0..16u64 {
            let data: Vec<u8> = (0..256).map(|i| (round ^ addr ^ i as u64) as u8).collect();
            records.push(TraceRecord {
                gap_instructions: 3,
                op: TraceOp::Write {
                    addr: LineAddr::new(addr),
                    data,
                },
            });
        }
    }
    let writes = records.len() as u64;
    let mut config = EngineConfig::for_workload(2, 256, 16, writes);
    config.scrub = true;
    config.coalesce = 8;
    let result = engine_run(&config, "storm", records);
    for shard in &result.shards {
        match &shard.scrub {
            Some(Ok(_)) => {}
            other => panic!("shard {} scrub: {other:?}", shard.shard),
        }
    }
    let b = &result.merged.base;
    assert_eq!(b.writes, writes);
    assert!(
        b.coalesced_writes > 0,
        "a 16-line rewrite storm must coalesce"
    );
    assert_eq!(
        b.writes_eliminated + b.coalesced_writes + result.merged.nvm_data_writes,
        b.writes,
        "refcount audit: every write dedups, coalesces, or stores exactly once"
    );
    assert_eq!(result.merged.write_latency.count(), b.writes);
}

#[test]
fn engine_scrub_finds_no_orphans_under_cross_thread_stress() {
    // Hammer 8 shards with a dup-heavy trace, then audit every shard's
    // tables: no orphaned counters, no dangling inverted rows, no leaked
    // free-space bits.
    let (records, lines, writes) = engine_trace(20_000, SEED ^ 0xBEEF);
    let result = engine_go(&records, lines, writes, 8);
    assert_eq!(result.ops, records.len() as u64, "ops were lost");
    for shard in &result.shards {
        match &shard.scrub {
            Some(Ok(_)) => {}
            Some(Err(e)) => panic!("shard {} failed scrub: {e}", shard.shard),
            None => panic!("shard {} was not scrubbed", shard.shard),
        }
    }
}
