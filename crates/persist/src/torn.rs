//! Torn-write fault injection: the crash model for the torture tests.
//!
//! A power failure mid-write leaves either a prefix of the bytes (the
//! common case on a block device) or, on media without atomic sector
//! writes, a corrupted cell. [`TornWriter`] models both at the `io::Write`
//! layer — it wraps any writer and applies one [`Fault`] at a chosen
//! absolute byte position; [`apply_fault`] does the same to an in-memory
//! image (used when the torture sweep mutates a copied store directory).

use std::io::{self, Write};

/// A single injected fault, positioned by absolute byte offset across the
/// whole written stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Everything from byte `at` onward is lost (classic torn write).
    Truncate {
        /// First byte that never reaches the medium.
        at: u64,
    },
    /// Bit `bit` of the byte at offset `at` is inverted (medium corruption
    /// under a crash, e.g. a half-programmed cell).
    BitFlip {
        /// Byte offset of the corrupted cell.
        at: u64,
        /// Bit index 0..8 within that byte.
        bit: u8,
    },
}

/// Apply `fault` to an in-memory file image. A `Truncate`/`BitFlip`
/// positioned at or past the end leaves the image unchanged.
pub fn apply_fault(bytes: &mut Vec<u8>, fault: Fault) {
    match fault {
        Fault::Truncate { at } => {
            if (at as usize) < bytes.len() {
                bytes.truncate(at as usize);
            }
        }
        Fault::BitFlip { at, bit } => {
            if let Some(b) = bytes.get_mut(at as usize) {
                *b ^= 1 << (bit % 8);
            }
        }
    }
}

/// An `io::Write` adapter injecting one [`Fault`] into the byte stream.
///
/// The writer keeps reporting success after a `Truncate` fault (the crash
/// is only discovered at recovery, exactly like real hardware), so the code
/// under test proceeds normally while its tail bytes silently vanish.
#[derive(Debug)]
pub struct TornWriter<W: Write> {
    inner: W,
    fault: Fault,
    written: u64,
}

impl<W: Write> TornWriter<W> {
    /// Wrap `inner`, arming `fault`.
    pub fn new(inner: W, fault: Fault) -> Self {
        TornWriter {
            inner,
            fault,
            written: 0,
        }
    }

    /// Total bytes the caller *believes* it has written.
    pub fn claimed_bytes(&self) -> u64 {
        self.written
    }

    /// Unwrap the inner writer.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for TornWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let start = self.written;
        match self.fault {
            Fault::Truncate { at } => {
                if start >= at {
                    // Fully past the tear: swallow silently.
                } else {
                    let keep = ((at - start) as usize).min(buf.len());
                    self.inner.write_all(&buf[..keep])?;
                }
            }
            Fault::BitFlip { at, bit } => {
                if at >= start && at < start + buf.len() as u64 {
                    let mut copy = buf.to_vec();
                    copy[(at - start) as usize] ^= 1 << (bit % 8);
                    self.inner.write_all(&copy)?;
                } else {
                    self.inner.write_all(buf)?;
                }
            }
        }
        self.written = start + buf.len() as u64;
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truncate_keeps_exact_prefix() {
        for at in 0..12u64 {
            let mut sink = Vec::new();
            {
                let mut w = TornWriter::new(&mut sink, Fault::Truncate { at });
                w.write_all(b"hello").unwrap();
                w.write_all(b" torn").unwrap();
                assert_eq!(w.claimed_bytes(), 10);
            }
            let expect = &b"hello torn"[..(at as usize).min(10)];
            assert_eq!(sink, expect, "tear at {at}");
        }
    }

    #[test]
    fn bitflip_corrupts_one_bit_across_write_boundaries() {
        for at in 0..10u64 {
            let mut sink = Vec::new();
            {
                let mut w = TornWriter::new(&mut sink, Fault::BitFlip { at, bit: 3 });
                w.write_all(b"hello").unwrap();
                w.write_all(b" torn").unwrap();
            }
            let mut expect = b"hello torn".to_vec();
            expect[at as usize] ^= 1 << 3;
            assert_eq!(sink, expect, "flip at {at}");
        }
    }

    #[test]
    fn apply_fault_matches_writer_semantics() {
        let mut img = b"hello torn".to_vec();
        apply_fault(&mut img, Fault::Truncate { at: 4 });
        assert_eq!(img, b"hell");
        let mut img = b"hello".to_vec();
        apply_fault(&mut img, Fault::BitFlip { at: 1, bit: 0 });
        assert_eq!(img[1], b'e' ^ 1);
        // Out-of-range faults are no-ops.
        let mut img = b"ok".to_vec();
        apply_fault(&mut img, Fault::Truncate { at: 10 });
        apply_fault(&mut img, Fault::BitFlip { at: 10, bit: 1 });
        assert_eq!(img, b"ok");
    }
}
