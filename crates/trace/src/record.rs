//! Trace records and a compact binary codec for record/replay.
//!
//! Traces are streams of [`TraceRecord`]s: line-granular reads and writes
//! annotated with the number of instructions executed since the previous
//! memory operation (which drives the IPC model). The codec is a simple
//! length-prefixed binary format (`DWTR` magic, version, line size), so
//! generated workloads can be captured once and replayed bit-identically
//! across schemes.

use std::io::{self, Read, Write};

use dewrite_nvm::LineAddr;

/// Magic bytes identifying a DeWrite trace stream.
pub const TRACE_MAGIC: [u8; 4] = *b"DWTR";
/// Current trace format version.
pub const TRACE_VERSION: u16 = 1;

/// One memory operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceOp {
    /// Read the line at `addr`.
    Read {
        /// Line address.
        addr: LineAddr,
    },
    /// Write `data` (one full line) to `addr`.
    Write {
        /// Line address.
        addr: LineAddr,
        /// Line contents.
        data: Vec<u8>,
    },
}

impl TraceOp {
    /// The line address this operation targets.
    pub fn addr(&self) -> LineAddr {
        match self {
            TraceOp::Read { addr } | TraceOp::Write { addr, .. } => *addr,
        }
    }

    /// Whether this is a write.
    pub fn is_write(&self) -> bool {
        matches!(self, TraceOp::Write { .. })
    }
}

/// One trace record: an operation plus the instruction gap preceding it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Instructions executed since the previous memory operation.
    pub gap_instructions: u32,
    /// The memory operation.
    pub op: TraceOp,
}

/// Streaming trace encoder.
///
/// ```
/// use dewrite_trace::{TraceWriter, TraceReader, TraceRecord, TraceOp};
/// use dewrite_nvm::LineAddr;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut buf = Vec::new();
/// let mut w = TraceWriter::new(&mut buf, 256)?;
/// w.write_record(&TraceRecord {
///     gap_instructions: 10,
///     op: TraceOp::Write { addr: LineAddr::new(3), data: vec![9u8; 256] },
/// })?;
/// drop(w);
///
/// let mut r = TraceReader::new(buf.as_slice())?;
/// assert_eq!(r.line_size(), 256);
/// let rec = r.read_record()?.expect("one record");
/// assert!(rec.op.is_write());
/// assert!(r.read_record()?.is_none());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    sink: W,
    line_size: usize,
    records: u64,
}

impl<W: Write> TraceWriter<W> {
    /// Start a trace stream on `sink` for lines of `line_size` bytes.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from writing the header.
    pub fn new(mut sink: W, line_size: usize) -> io::Result<Self> {
        sink.write_all(&TRACE_MAGIC)?;
        sink.write_all(&TRACE_VERSION.to_le_bytes())?;
        sink.write_all(&(line_size as u32).to_le_bytes())?;
        Ok(TraceWriter {
            sink,
            line_size,
            records: 0,
        })
    }

    /// Append one record.
    ///
    /// # Errors
    ///
    /// Fails with [`io::ErrorKind::InvalidInput`] if a write record's data is
    /// not exactly one line; otherwise propagates I/O errors.
    pub fn write_record(&mut self, rec: &TraceRecord) -> io::Result<()> {
        match &rec.op {
            TraceOp::Read { addr } => {
                self.sink.write_all(&[0u8])?;
                self.sink.write_all(&rec.gap_instructions.to_le_bytes())?;
                self.sink.write_all(&addr.index().to_le_bytes())?;
            }
            TraceOp::Write { addr, data } => {
                if data.len() != self.line_size {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidInput,
                        format!(
                            "write data {} bytes, trace line size {}",
                            data.len(),
                            self.line_size
                        ),
                    ));
                }
                self.sink.write_all(&[1u8])?;
                self.sink.write_all(&rec.gap_instructions.to_le_bytes())?;
                self.sink.write_all(&addr.index().to_le_bytes())?;
                self.sink.write_all(data)?;
            }
        }
        self.records += 1;
        Ok(())
    }

    /// Records written so far.
    pub fn records_written(&self) -> u64 {
        self.records
    }

    /// Flush and return the underlying sink.
    ///
    /// # Errors
    ///
    /// Propagates the flush error.
    pub fn into_inner(mut self) -> io::Result<W> {
        self.sink.flush()?;
        Ok(self.sink)
    }
}

/// Streaming trace decoder. See [`TraceWriter`] for an end-to-end example.
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    source: R,
    line_size: usize,
}

impl<R: Read> TraceReader<R> {
    /// Open a trace stream, validating the header.
    ///
    /// # Errors
    ///
    /// Fails with [`io::ErrorKind::InvalidData`] on a bad magic or
    /// unsupported version.
    pub fn new(mut source: R) -> io::Result<Self> {
        let mut magic = [0u8; 4];
        source.read_exact(&mut magic)?;
        if magic != TRACE_MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a DeWrite trace",
            ));
        }
        let mut ver = [0u8; 2];
        source.read_exact(&mut ver)?;
        let version = u16::from_le_bytes(ver);
        if version != TRACE_VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unsupported trace version {version}"),
            ));
        }
        let mut ls = [0u8; 4];
        source.read_exact(&mut ls)?;
        Ok(TraceReader {
            source,
            line_size: u32::from_le_bytes(ls) as usize,
        })
    }

    /// The line size declared in the header.
    pub fn line_size(&self) -> usize {
        self.line_size
    }

    /// Read the next record, or `None` at end of stream.
    ///
    /// # Errors
    ///
    /// Fails on truncated records or unknown op tags.
    pub fn read_record(&mut self) -> io::Result<Option<TraceRecord>> {
        let mut tag = [0u8; 1];
        match self.source.read(&mut tag)? {
            0 => return Ok(None),
            1 => {}
            _ => unreachable!("read of 1-byte buffer returned >1"),
        }
        let mut gap = [0u8; 4];
        self.source.read_exact(&mut gap)?;
        let mut addr = [0u8; 8];
        self.source.read_exact(&mut addr)?;
        let gap_instructions = u32::from_le_bytes(gap);
        let addr = LineAddr::new(u64::from_le_bytes(addr));
        let op = match tag[0] {
            0 => TraceOp::Read { addr },
            1 => {
                let mut data = vec![0u8; self.line_size];
                self.source.read_exact(&mut data)?;
                TraceOp::Write { addr, data }
            }
            t => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unknown trace op tag {t}"),
                ))
            }
        };
        Ok(Some(TraceRecord {
            gap_instructions,
            op,
        }))
    }

    /// Drain the remaining records into a vector.
    ///
    /// # Errors
    ///
    /// Propagates any decode error.
    pub fn read_all(&mut self) -> io::Result<Vec<TraceRecord>> {
        let mut out = Vec::new();
        while let Some(rec) = self.read_record()? {
            out.push(rec);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(records: &[TraceRecord]) -> Vec<TraceRecord> {
        let mut buf = Vec::new();
        let mut w = TraceWriter::new(&mut buf, 64).unwrap();
        for r in records {
            w.write_record(r).unwrap();
        }
        assert_eq!(w.records_written(), records.len() as u64);
        w.into_inner().unwrap();
        let mut r = TraceReader::new(buf.as_slice()).unwrap();
        r.read_all().unwrap()
    }

    #[test]
    fn empty_trace_roundtrips() {
        assert!(roundtrip(&[]).is_empty());
    }

    #[test]
    fn mixed_trace_roundtrips() {
        let records = vec![
            TraceRecord {
                gap_instructions: 5,
                op: TraceOp::Read {
                    addr: LineAddr::new(1),
                },
            },
            TraceRecord {
                gap_instructions: 100,
                op: TraceOp::Write {
                    addr: LineAddr::new(2),
                    data: (0..64).map(|i| i as u8).collect(),
                },
            },
            TraceRecord {
                gap_instructions: 0,
                op: TraceOp::Read {
                    addr: LineAddr::new(u64::MAX / 2),
                },
            },
        ];
        assert_eq!(roundtrip(&records), records);
    }

    #[test]
    fn rejects_bad_magic() {
        let err = TraceReader::new(&b"NOPE\x01\x00\x40\x00\x00\x00"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn rejects_bad_version() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&TRACE_MAGIC);
        buf.extend_from_slice(&99u16.to_le_bytes());
        buf.extend_from_slice(&64u32.to_le_bytes());
        assert!(TraceReader::new(buf.as_slice()).is_err());
    }

    #[test]
    fn rejects_wrong_line_size_on_write() {
        let mut buf = Vec::new();
        let mut w = TraceWriter::new(&mut buf, 64).unwrap();
        let rec = TraceRecord {
            gap_instructions: 0,
            op: TraceOp::Write {
                addr: LineAddr::new(0),
                data: vec![0u8; 32],
            },
        };
        assert_eq!(
            w.write_record(&rec).unwrap_err().kind(),
            io::ErrorKind::InvalidInput
        );
    }

    #[test]
    fn truncated_record_is_an_error() {
        let mut buf = Vec::new();
        let mut w = TraceWriter::new(&mut buf, 64).unwrap();
        w.write_record(&TraceRecord {
            gap_instructions: 1,
            op: TraceOp::Write {
                addr: LineAddr::new(1),
                data: vec![7u8; 64],
            },
        })
        .unwrap();
        w.into_inner().unwrap();
        buf.truncate(buf.len() - 10);
        let mut r = TraceReader::new(buf.as_slice()).unwrap();
        assert!(r.read_record().is_err());
    }

    #[test]
    fn op_helpers() {
        let read = TraceOp::Read {
            addr: LineAddr::new(4),
        };
        let write = TraceOp::Write {
            addr: LineAddr::new(5),
            data: vec![],
        };
        assert!(!read.is_write());
        assert!(write.is_write());
        assert_eq!(read.addr(), LineAddr::new(4));
        assert_eq!(write.addr(), LineAddr::new(5));
    }
}
