//! Ablations and extensions beyond the paper's headline experiments:
//! history-window width, hash-function choice, cache replacement policy,
//! NVM technology, and deduplication granularity.

use dewrite_core::{
    DeWrite, DeWriteConfig, DigestMode, HistoryPredictor, MetadataPersistence, Simulator,
    SystemConfig,
};
use dewrite_hashes::HashAlgorithm;
use dewrite_mem::Replacement;
use dewrite_nvm::Timing;
use dewrite_trace::{all_apps, app_by_name, DupOracle, TraceGenerator};

use crate::experiments::{mean, Ctx};
use crate::runner::{
    par_map_apps, run_scheme, run_scheme_encoded, Scale, SchemeKind, Workload, KEY,
};
use crate::table::{f3, pct, Table};

/// History-window width sweep (the paper stops at 3 bits; we sweep 1–7).
pub fn ext_history(ctx: &mut Ctx) {
    let apps = all_apps();
    let scale = ctx.scale;
    let bits: Vec<usize> = vec![1, 2, 3, 5, 7];
    let per_app = par_map_apps(&apps, |profile, seed| {
        let w = Workload::generate(profile, scale, seed);
        let mut oracle = DupOracle::recording();
        for rec in &w.warmup {
            oracle.observe_warmup(rec);
        }
        for rec in &w.trace {
            oracle.observe(rec);
        }
        let outcomes = oracle.outcomes().to_vec();
        [1usize, 2, 3, 5, 7].map(|b| {
            let mut p = HistoryPredictor::new(b);
            for &o in &outcomes {
                p.record(o);
            }
            p.accuracy()
        })
    });

    let mut t = Table::new(
        "Extension — predictor accuracy vs history width (paper: 3 bits suffice)",
        &["history bits", "avg accuracy"],
    );
    for (i, b) in bits.iter().enumerate() {
        t.row(vec![b.to_string(), pct(mean(per_app.iter().map(|r| r[i])))]);
    }
    ctx.emit(&t, "ext_history");
}

/// Hash-function ablation: CRC-32 vs CRC-32C vs (truncated) SHA-1 as the
/// dedup fingerprint inside DeWrite.
pub fn ext_hash(ctx: &mut Ctx) {
    let apps = ["mcf", "lbm", "vips", "dedup"];
    let profiles: Vec<_> = apps
        .iter()
        .map(|n| app_by_name(n).expect("known"))
        .collect();
    let scale = ctx.scale;
    let rows = par_map_apps(&profiles, |profile, seed| {
        let w = Workload::generate(profile, scale, seed);
        let algs = [
            HashAlgorithm::Crc32,
            HashAlgorithm::Crc32c,
            HashAlgorithm::Sha1,
        ];
        let reports = algs.map(|h| run_scheme(SchemeKind::DeWriteHasher(h), &w));
        (profile.name.to_string(), reports)
    });

    let mut t = Table::new(
        "Extension — fingerprint choice inside DeWrite (CRC variants equal; SHA-1 latency hurts)",
        &[
            "app",
            "crc32 write ns",
            "crc32c write ns",
            "sha1 write ns",
            "crc32 reduction",
            "sha1 reduction",
        ],
    );
    for (name, [crc, crcc, sha]) in &rows {
        t.row(vec![
            name.clone(),
            f3(crc.write_latency.mean_ns()),
            f3(crcc.write_latency.mean_ns()),
            f3(sha.write_latency.mean_ns()),
            pct(crc.write_reduction()),
            pct(sha.write_reduction()),
        ]);
    }
    ctx.emit(&t, "ext_hash");
}

/// Replacement-policy ablation: LRU vs FIFO vs scan-resistant S3-FIFO
/// metadata caches, one row per (app, policy) so `bench_compare` can diff
/// dedup rate and tail latency per policy across trajectories.
pub fn ext_repl(ctx: &mut Ctx) {
    let apps = ["mcf", "cactusADM", "vips", "streamcluster"];
    let profiles: Vec<_> = apps
        .iter()
        .map(|n| app_by_name(n).expect("known"))
        .collect();
    let scale = ctx.scale;
    let rows = par_map_apps(&profiles, |profile, seed| {
        let w = Workload::generate(profile, scale, seed);
        let config = w.system_config();
        let run = |repl: Replacement| {
            let mut dw = DeWriteConfig::paper();
            dw.meta_cache = dewrite_core::MetaCacheConfig::scaled(16, 256);
            dw.meta_cache.replacement = repl;
            let mut mem = DeWrite::new(config.clone(), dw, KEY);
            let report = Simulator::new(&config)
                .run(&mut mem, profile.name, &w.warmup, w.trace.iter().cloned())
                .expect("fits");
            let s = mem.cache_stats();
            let hit = mean([
                s.hash.hit_rate(),
                s.addr_map.hit_rate(),
                s.inverted.hit_rate(),
                s.fsm.hit_rate(),
            ]);
            (
                hit,
                report.write_reduction(),
                report.write_latency_hist.p99_ns(),
            )
        };
        (profile.name.to_string(), Replacement::ALL.map(run))
    });

    let mut t = Table::new(
        "Extension — metadata cache replacement (16 KB partitions, per app x policy)",
        &["app", "policy", "avg hit", "dedup rate", "p99 write (ns)"],
    );
    for (name, per_policy) in &rows {
        for (policy, (hit, dedup, p99)) in Replacement::ALL.iter().zip(per_policy) {
            t.row(vec![
                format!("{name}/{policy}"),
                policy.to_string(),
                pct(*hit),
                pct(*dedup),
                p99.to_string(),
            ]);
        }
    }
    ctx.emit(&t, "ext_repl");
}

/// Digest-mode sweep: crc32-verify vs strong-keyed verify-free across
/// apps, including the adversarial duplicate-flood trace. Verify-free
/// trades the per-duplicate array read for a longer (but still in-line)
/// fingerprint: the dedup rate is unchanged on collision-free traces,
/// every elimination is an assumed duplicate, and the vanished verify
/// reads show up in tail latency and energy on duplicate-heavy mixes.
pub fn ext_digest(ctx: &mut Ctx) {
    let apps = ["mcf", "vips", "dedup", "dupflood"];
    let profiles: Vec<_> = apps
        .iter()
        .map(|n| app_by_name(n).expect("known"))
        .collect();
    let scale = ctx.scale;
    let rows = par_map_apps(&profiles, |profile, seed| {
        let w = Workload::generate(profile, scale, seed);
        let config = w.system_config();
        let run = |mode: DigestMode| {
            let mut dw = DeWriteConfig::paper();
            dw.digest_mode = mode;
            let mut mem = DeWrite::new(config.clone(), dw, KEY);
            let report = Simulator::new(&config)
                .run(&mut mem, profile.name, &w.warmup, w.trace.iter().cloned())
                .expect("fits");
            let dm = mem.dewrite_metrics();
            (
                report.write_reduction(),
                dm.assumed_dups,
                report.write_latency_hist.p99_ns(),
                report.energy.total_pj(),
            )
        };
        (profile.name.to_string(), DigestMode::ALL.map(run))
    });

    let mut t = Table::new(
        "Extension — digest mode (verify-read vs verify-free strong tag, per app x mode)",
        &[
            "app",
            "digest mode",
            "dedup rate",
            "assumed dups",
            "p99 write (ns)",
            "energy (uJ)",
        ],
    );
    for (name, per_mode) in &rows {
        for (mode, (dedup, assumed, p99, pj)) in DigestMode::ALL.iter().zip(per_mode) {
            t.row(vec![
                format!("{name}/{mode}"),
                mode.to_string(),
                pct(*dedup),
                assumed.to_string(),
                p99.to_string(),
                f3(*pj as f64 / 1e6),
            ]);
        }
    }
    ctx.emit(&t, "ext_digest");
}

/// NVM-technology sensitivity: PCM vs a faster STT-RAM-like device. The
/// read/write asymmetry shrinks (50/10 vs 300/75), so DeWrite's relative
/// gains shrink too — the paper's "intrinsic asymmetry" argument in
/// reverse.
pub fn ext_stt(ctx: &mut Ctx) {
    let apps = ["mcf", "lbm", "vips"];
    let profiles: Vec<_> = apps
        .iter()
        .map(|n| app_by_name(n).expect("known"))
        .collect();
    let scale = ctx.scale;
    let rows = par_map_apps(&profiles, |profile, seed| {
        let w = Workload::generate(profile, scale, seed);
        let speedup = |timing: Timing| {
            let mut config = w.system_config();
            config.nvm.timing = timing;
            let sim = Simulator::new(&config);
            let mut dw = DeWrite::new(config.clone(), DeWriteConfig::paper(), KEY);
            let r1 = sim
                .run(&mut dw, profile.name, &w.warmup, w.trace.iter().cloned())
                .expect("fits");
            let mut base = dewrite_core::CmeBaseline::new(config, KEY);
            let r2 = sim
                .run(&mut base, profile.name, &w.warmup, w.trace.iter().cloned())
                .expect("fits");
            r1.write_speedup_vs(&r2)
        };
        (
            profile.name.to_string(),
            speedup(Timing::PCM),
            speedup(Timing::STT_RAM),
        )
    });

    let mut t = Table::new(
        "Extension — write speedup by NVM technology (asymmetry 4x vs 5x, absolute latencies differ)",
        &["app", "PCM speedup", "STT-RAM speedup"],
    );
    for (name, pcm, stt) in &rows {
        t.row(vec![
            name.clone(),
            format!("{pcm:.2}x"),
            format!("{stt:.2}x"),
        ]);
    }
    ctx.emit(&t, "ext_stt");
}

/// Dedup-granularity ablation: 64 B vs 256 B lines. Smaller lines dedup
/// slightly better but quadruple the metadata (the reason the paper uses
/// 256 B).
pub fn ext_gran(ctx: &mut Ctx) {
    let apps = ["mcf", "lbm", "vips"];
    let profiles: Vec<_> = apps
        .iter()
        .map(|n| app_by_name(n).expect("known"))
        .collect();
    let scale = Scale {
        writes: ctx.scale.writes / 2,
        ..ctx.scale
    };
    let rows = par_map_apps(&profiles, |profile, seed| {
        let run = |line_size: usize| {
            let shaped = scale.shape(profile.clone());
            let mut gen = TraceGenerator::new(shaped.clone(), line_size, seed);
            let warmup = gen.warmup_records();
            let mut trace = Vec::new();
            let mut writes = 0usize;
            while writes < scale.writes {
                match gen.next() {
                    Some(r) => {
                        if r.op.is_write() {
                            writes += 1;
                        }
                        trace.push(r);
                    }
                    None => break,
                }
            }
            let data_lines = shaped.working_set_lines + shaped.content_pool_size as u64 + 64;
            let config = SystemConfig::for_lines_with(data_lines, line_size);
            let sim = Simulator::new(&config);
            let mut mem = DeWrite::new(config, DeWriteConfig::paper(), KEY);
            let r = sim
                .run(&mut mem, profile.name, &warmup, trace.iter().cloned())
                .expect("fits");
            r.write_reduction()
        };
        (profile.name.to_string(), run(64), run(256))
    });

    let mut t = Table::new(
        "Extension — dedup granularity (64 B metadata cost is 4x; paper picks 256 B)",
        &["app", "64 B reduction", "256 B reduction"],
    );
    for (name, g64, g256) in &rows {
        t.row(vec![name.clone(), pct(*g64), pct(*g256)]);
    }
    ctx.emit(&t, "ext_gran");
}

/// Metadata-persistence ablation (§V): battery-backed write-back vs
/// SecPM-style write-through vs epoch flushing. Measures the runtime cost
/// of crash consistency without a battery.
pub fn ext_persist(ctx: &mut Ctx) {
    let apps = ["mcf", "lbm", "vips"];
    let profiles: Vec<_> = apps
        .iter()
        .map(|n| app_by_name(n).expect("known"))
        .collect();
    let scale = ctx.scale;
    let policies = [
        MetadataPersistence::BatteryBacked,
        MetadataPersistence::EpochFlush { interval: 64 },
        MetadataPersistence::WriteThrough,
    ];
    let rows = par_map_apps(&profiles, |profile, seed| {
        let w = Workload::generate(profile, scale, seed);
        let config = w.system_config();
        let runs: Vec<_> = policies
            .iter()
            .map(|&persistence| {
                let mut dw_cfg = DeWriteConfig::paper();
                dw_cfg.persistence = persistence;
                let mut mem = DeWrite::new(config.clone(), dw_cfg, KEY);
                let r = Simulator::new(&config)
                    .run(&mut mem, profile.name, &w.warmup, w.trace.iter().cloned())
                    .expect("fits");
                let dirty = mem.dirty_metadata_entries();
                mem.scrub().expect("post-run scrub");
                (r, dirty)
            })
            .collect();
        (profile.name.to_string(), runs)
    });

    let mut t = Table::new(
        "Extension — metadata persistence policies (crash exposure vs metadata write traffic)",
        &[
            "app",
            "policy",
            "write ns",
            "IPC",
            "meta writes / data write",
            "dirty at crash",
        ],
    );
    for (name, runs) in &rows {
        for (policy, (r, dirty)) in policies.iter().zip(runs.iter()) {
            t.row(vec![
                name.clone(),
                policy.to_string(),
                f3(r.write_latency.mean_ns()),
                f3(r.ipc),
                f3(r.base.meta_nvm_writes as f64 / r.base.writes.max(1) as f64),
                dirty.to_string(),
            ]);
        }
    }
    ctx.emit(&t, "ext_persist");
}

/// Wear-leveling composition: Start-Gap under a dedup-skewed write stream.
/// Demonstrates that DeWrite's free-space recycling concentrates wear and
/// that Start-Gap spreads it back out.
pub fn ext_wear(ctx: &mut Ctx) {
    use dewrite_nvm::{LineAddr, StartGap};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let lines = 256u64;
    let writes = (ctx.scale.writes * 8) as u64;
    let mut rng = StdRng::seed_from_u64(7);

    // A dedup-style skewed stream: a handful of hot recycled free lines
    // absorb 80% of the writes.
    let mut sample_addr = |rng: &mut StdRng| -> u64 {
        if rng.gen_bool(0.8) {
            rng.gen_range(0..8)
        } else {
            rng.gen_range(8..lines)
        }
    };

    let run = |with_leveling: bool,
               rng: &mut StdRng,
               sample: &mut dyn FnMut(&mut StdRng) -> u64|
     -> (u64, f64) {
        let mut wear = vec![0u64; lines as usize + 1];
        let mut sg = StartGap::new(lines, 10);
        for _ in 0..writes {
            let logical = LineAddr::new(sample(rng));
            let physical = if with_leveling {
                sg.remap(logical)
            } else {
                logical
            };
            wear[physical.index() as usize] += 1;
            if with_leveling {
                if let Some((_, dst)) = sg.note_write() {
                    wear[dst.index() as usize] += 1; // the gap-move write
                }
            }
        }
        let max = *wear.iter().max().expect("nonempty");
        let mean = writes as f64 / lines as f64;
        (max, max as f64 / mean)
    };

    let (max_plain, skew_plain) = run(false, &mut rng, &mut sample_addr);
    let (max_leveled, skew_leveled) = run(true, &mut rng, &mut sample_addr);

    let mut t = Table::new(
        "Extension — Start-Gap wear leveling under a dedup-skewed write stream",
        &["configuration", "max line writes", "max / mean skew"],
    );
    t.row(vec![
        "no leveling".into(),
        max_plain.to_string(),
        f3(skew_plain),
    ]);
    t.row(vec![
        "start-gap (interval 10)".into(),
        max_leveled.to_string(),
        f3(skew_leveled),
    ]);
    ctx.emit(&t, "ext_wear");
}

/// Full-system composition of line-level and bit-level schemes: the
/// through-the-simulator counterpart of Fig. 13's standalone streams.
/// Reports the device-measured fraction of cells programmed per data write
/// for {baseline, Silent Shredder, DeWrite} × {raw, DCW, FNW}.
pub fn ext_combined(ctx: &mut Ctx) {
    use dewrite_core::BitEncoding;
    let apps = ["mcf", "lbm", "sjeng"];
    let profiles: Vec<_> = apps
        .iter()
        .map(|n| app_by_name(n).expect("known"))
        .collect();
    let scale = Scale {
        writes: ctx.scale.writes / 2,
        ..ctx.scale
    };
    let schemes = [
        SchemeKind::Baseline,
        SchemeKind::SilentShredder,
        SchemeKind::DeWrite,
    ];
    let encodings = [BitEncoding::Raw, BitEncoding::Dcw, BitEncoding::Fnw];
    let rows = par_map_apps(&profiles, |profile, seed| {
        let w = Workload::generate(profile, scale, seed);
        let mut cells = Vec::new();
        for kind in schemes {
            for enc in encodings {
                let r = run_scheme_encoded(kind, &w, enc);
                // Programmed cells per *issued* write, so eliminated writes
                // count as zero — comparable to Fig. 13's per-write metric.
                let line_bits = 2048.0;
                let per_write = r.bit_flip_ratio
                    * (r.nvm_data_writes as f64 / r.base.writes.max(1) as f64)
                    * line_bits
                    / line_bits;
                cells.push(per_write);
            }
        }
        (profile.name.to_string(), cells)
    });

    let mut t = Table::new(
        "Extension — full-system bit flips per issued write (line-level × cell-level schemes)",
        &[
            "app", "base raw", "base DCW", "base FNW", "SS raw", "SS DCW", "SS FNW", "DW raw",
            "DW DCW", "DW FNW",
        ],
    );
    for (name, cells) in &rows {
        let mut row = vec![name.clone()];
        row.extend(cells.iter().map(|c| pct(*c)));
        t.row(row);
    }
    let mut avg = vec!["AVERAGE".to_string()];
    for i in 0..9 {
        avg.push(pct(mean(rows.iter().map(|r| r.1[i]))));
    }
    t.row(avg);
    ctx.emit(&t, "ext_combined");
}

/// Cross-program deduplication: two applications co-located on one NVMM
/// with disjoint address spaces. DeWrite's content index is global, so
/// content shared *across* programs (zero pages, common initialization
/// patterns) deduplicates too — the same effect page-level memory dedup
/// exploits in virtualized hosts, here at line granularity. (The paper
/// scopes out the associated dedup side channels, §V; so do we.)
pub fn ext_colo(ctx: &mut Ctx) {
    use dewrite_core::CmeBaseline;
    use dewrite_nvm::LineAddr;
    use dewrite_trace::{TraceGenerator, TraceOp, TraceRecord};

    let pairs = [("gcc", "mcf"), ("lbm", "libquantum"), ("vips", "bzip2")];
    let scale = Scale {
        writes: ctx.scale.writes / 2,
        ..ctx.scale
    };

    let mut t = Table::new(
        "Extension — co-located programs on one DeWrite NVMM: reduction lands on the traffic-weighted average (no interference)",
        &["pair", "solo reduction A", "solo reduction B", "co-located reduction"],
    );
    for (a, b) in pairs {
        let pa = scale.shape(app_by_name(a).expect("known"));
        let pb = scale.shape(app_by_name(b).expect("known"));

        // Generate both traces; program B's addresses are offset into the
        // second half of the address space.
        let build = |p: &dewrite_trace::AppProfile, seed: u64| {
            let mut gen = TraceGenerator::new(p.clone(), 256, seed);
            let warmup = gen.warmup_records();
            let mut trace = Vec::new();
            let mut writes = 0;
            while writes < scale.writes {
                let rec = gen.next().expect("infinite");
                writes += usize::from(rec.op.is_write());
                trace.push(rec);
            }
            (warmup, trace)
        };
        let (wa, ta) = build(&pa, 100);
        let (wb, tb) = build(&pb, 200);
        let span = pa.working_set_lines + pa.content_pool_size as u64 + 64;
        let offset = |rec: &TraceRecord| -> TraceRecord {
            let shift = |addr: LineAddr| LineAddr::new(addr.index() + span);
            TraceRecord {
                gap_instructions: rec.gap_instructions,
                op: match &rec.op {
                    TraceOp::Read { addr } => TraceOp::Read { addr: shift(*addr) },
                    TraceOp::Write { addr, data } => TraceOp::Write {
                        addr: shift(*addr),
                        data: data.clone(),
                    },
                },
            }
        };

        // Interleave the two programs record by record.
        let mut merged_warm: Vec<TraceRecord> = wa.clone();
        merged_warm.extend(wb.iter().map(&offset));
        let mut merged = Vec::with_capacity(ta.len() + tb.len());
        let (mut ia, mut ib) = (ta.iter(), tb.iter());
        loop {
            match (ia.next(), ib.next()) {
                (Some(x), Some(y)) => {
                    merged.push(x.clone());
                    merged.push(offset(y));
                }
                (Some(x), None) => merged.push(x.clone()),
                (None, Some(y)) => merged.push(offset(y)),
                (None, None) => break,
            }
        }

        let reduction = |warm: &[TraceRecord], trace: &[TraceRecord], lines: u64| -> f64 {
            let config = SystemConfig::for_lines(lines);
            let mut mem = DeWrite::new(config.clone(), DeWriteConfig::paper(), KEY);
            let r = Simulator::new(&config)
                .run(&mut mem, "colo", warm, trace.iter().cloned())
                .expect("fits");
            let _ = CmeBaseline::new(config, KEY); // (type parity; unused)
            r.write_reduction()
        };

        let solo_a = reduction(&wa, &ta, span);
        let solo_b = reduction(&wb, &tb, span);
        let colo = reduction(&merged_warm, &merged, span * 2);
        t.row(vec![
            format!("{a}+{b}"),
            pct(solo_a),
            pct(solo_b),
            pct(colo),
        ]);
    }
    ctx.emit(&t, "ext_colo");
}

/// §III-C validation: materialize the byte-accurate colocated layout from
/// each application's end state and measure how often the "at least one
/// null slot per row" observation holds (it is what lets counters embed),
/// plus the storage-overhead arithmetic of §IV-E1.
pub fn ext_layout(ctx: &mut Ctx) {
    use dewrite_core::{ColocatedStore, DeWrite as Dw};
    let apps = all_apps();
    let scale = ctx.scale;
    let rows = par_map_apps(&apps, |profile, seed| {
        let w = Workload::generate(profile, scale, seed);
        let config = w.system_config();
        let mut mem = Dw::new(config.clone(), DeWriteConfig::paper(), KEY);
        Simulator::new(&config)
            .run(&mut mem, profile.name, &w.warmup, w.trace.iter().cloned())
            .expect("fits");
        let layout = mem.colocation_layout();
        let stats = layout.stats();
        (profile.name.to_string(), stats)
    });

    let mut t = Table::new(
        "Extension — colocated metadata layout (§III-C): counters embedded in null slots",
        &[
            "app",
            "in addr-map slot",
            "in inverted slot",
            "overflow (both busy)",
            "embedded",
        ],
    );
    let mut fractions = Vec::new();
    for (name, s) in &rows {
        fractions.push(s.embedded_fraction());
        t.row(vec![
            name.clone(),
            s.counters_in_addr_map.to_string(),
            s.counters_in_inverted.to_string(),
            s.overflow_counters.to_string(),
            pct(s.embedded_fraction()),
        ]);
    }
    t.row(vec![
        "AVERAGE".into(),
        String::new(),
        String::new(),
        String::new(),
        pct(mean(fractions)),
    ]);
    ctx.emit(&t, "ext_layout");

    let mut o = Table::new(
        "Metadata storage overhead (paper §IV-E1: ≈6.25% of capacity)",
        &["line size", "overhead"],
    );
    for ls in [64usize, 128, 256, 512] {
        o.row(vec![
            format!("{ls} B"),
            pct(ColocatedStore::storage_overhead(ls)),
        ]);
    }
    ctx.emit(&o, "ext_layout_overhead");
}

/// Bank-parallelism sensitivity: DeWrite's gains come from relieving bank
/// queueing, so they shrink as the device gets more internal parallelism —
/// and the baseline catches up. A sanity ablation for the contention model.
pub fn ext_banks(ctx: &mut Ctx) {
    use dewrite_core::{CmeBaseline, DeWrite as Dw};
    let profile = app_by_name("milc").expect("known");
    let scale = ctx.scale;
    let w = Workload::generate(&profile, scale, 5);

    let mut t = Table::new(
        "Extension — sensitivity to NVM bank count (milc)",
        &[
            "banks",
            "baseline write (ns)",
            "dewrite write (ns)",
            "write speedup",
            "read speedup",
        ],
    );
    for banks in [1usize, 2, 4, 8, 16] {
        let mut config = w.system_config();
        config.nvm.banks = banks;
        let sim = Simulator::new(&config);
        let mut dw = Dw::new(config.clone(), DeWriteConfig::paper(), KEY);
        let r1 = sim
            .run(&mut dw, profile.name, &w.warmup, w.trace.iter().cloned())
            .expect("fits");
        let mut base = CmeBaseline::new(config, KEY);
        let r2 = sim
            .run(&mut base, profile.name, &w.warmup, w.trace.iter().cloned())
            .expect("fits");
        t.row(vec![
            banks.to_string(),
            f3(r2.write_latency.mean_ns()),
            f3(r1.write_latency.mean_ns()),
            format!("{:.2}x", r1.write_speedup_vs(&r2)),
            format!("{:.2}x", r1.read_speedup_vs(&r2)),
        ]);
    }
    ctx.emit(&t, "ext_banks");
}

/// Dedup-domain sweep: the isolation/efficiency trade-off of partitioning
/// the dedup index per tenant (the mitigation for the timing side channel
/// demonstrated in `examples/timing_probe.rs`).
pub fn ext_domains(ctx: &mut Ctx) {
    use dewrite_core::DeWrite as Dw;
    let apps = ["mcf", "lbm", "vips"];
    let profiles: Vec<_> = apps
        .iter()
        .map(|n| app_by_name(n).expect("known"))
        .collect();
    let scale = ctx.scale;
    let domains = [1u64, 2, 4, 16];
    let rows = par_map_apps(&profiles, |profile, seed| {
        let w = Workload::generate(profile, scale, seed);
        let config = w.system_config();
        let reductions: Vec<f64> = domains
            .iter()
            .map(|&d| {
                let mut cfg = DeWriteConfig::paper();
                cfg.dedup_domains = d;
                let mut mem = Dw::new(config.clone(), cfg, KEY);
                let r = Simulator::new(&config)
                    .run(&mut mem, profile.name, &w.warmup, w.trace.iter().cloned())
                    .expect("fits");
                r.write_reduction()
            })
            .collect();
        (profile.name.to_string(), reductions)
    });

    let mut t = Table::new(
        "Extension — dedup domains (side-channel isolation vs write reduction)",
        &["app", "1 domain", "2 domains", "4 domains", "16 domains"],
    );
    for (name, red) in &rows {
        let mut row = vec![name.clone()];
        row.extend(red.iter().map(|r| pct(*r)));
        t.row(row);
    }
    ctx.emit(&t, "ext_domains");
}
