//! Workload generation, capture, and analysis for the DeWrite reproduction.
//!
//! The paper evaluates on 20 applications from SPEC CPU2006 and PARSEC 2.1.
//! Those suites (and gem5 to run them) are unavailable here, so this crate
//! substitutes **calibrated synthetic traces**: each application is a
//! statistical [`AppProfile`] whose parameters are digitised from the
//! paper's own figures — duplication ratio and zero-line share (Fig. 2),
//! duplication-state persistence (Fig. 4), plus read/write mix and write
//! density. A [`TraceGenerator`] turns a profile into a deterministic,
//! seeded stream of line-granular [`TraceRecord`]s; the [`DupOracle`]
//! measures ground-truth duplication of any trace; [`TraceWriter`] /
//! [`TraceReader`] capture traces to a compact binary format for
//! bit-identical replay across schemes.
//!
//! # Example
//!
//! ```
//! use dewrite_trace::{app_by_name, DupOracle, TraceGenerator};
//!
//! let profile = app_by_name("lbm").expect("known app");
//! let mut gen = TraceGenerator::new(profile, 256, 1);
//! let mut oracle = DupOracle::new();
//! for rec in gen.warmup_records() {
//!     oracle.observe_warmup(&rec);
//! }
//! for rec in gen.by_ref().take(2_000) {
//!     oracle.observe(&rec);
//! }
//! // lbm is one of the paper's most duplicate-heavy applications (~95%).
//! assert!(oracle.stats().dup_ratio() > 0.85);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod apps;
mod generator;
mod partition;
mod profile;
mod record;
mod zipf;

pub use analysis::{analyze, DupOracle, DupStats};
pub use apps::{
    all_apps, app_by_name, dup_flood, scan_adversary, worst_case, PARSEC_APPS, SPEC_APPS,
};
pub use generator::TraceGenerator;
pub use partition::{partition_records, shard_of_line};
pub use profile::{AppProfile, Suite};
pub use record::{TraceOp, TraceReader, TraceRecord, TraceWriter, TRACE_MAGIC, TRACE_VERSION};
pub use zipf::Zipf;
