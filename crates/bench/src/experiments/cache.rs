//! Fig. 21: metadata-cache capacity and prefetch-granularity sweeps.
//!
//! The paper sweeps each partition's capacity (and, for the sequential
//! tables, the prefetch granularity) and picks 512 KB × 3 + 128 KB with
//! 256-entry prefetch. Our workload footprints are scaled down relative to
//! the paper's 4-billion-instruction runs, so the *absolute* capacities at
//! which the curves saturate are smaller; the shape — rising hit rate that
//! saturates, and a prefetch sweet spot — is the reproduced result.

use dewrite_core::{DeWrite, DeWriteConfig, MetaCacheConfig, Simulator};
use dewrite_trace::app_by_name;

use crate::experiments::{mean, Ctx};
use crate::runner::{par_map_apps, Workload, KEY};
use crate::table::{pct, Table};

/// Representative applications for the sweep (mixed duplication levels).
const SWEEP_APPS: [&str; 4] = ["mcf", "cactusADM", "vips", "streamcluster"];

fn hit_rates_for(meta: MetaCacheConfig, scale: crate::runner::Scale) -> [f64; 4] {
    let profiles: Vec<_> = SWEEP_APPS
        .iter()
        .map(|n| app_by_name(n).expect("known app"))
        .collect();
    let rates = par_map_apps(&profiles, |profile, seed| {
        let w = Workload::generate(profile, scale, seed);
        let config = w.system_config();
        let mut dw = DeWriteConfig::paper();
        dw.meta_cache = meta;
        let mut mem = DeWrite::new(config.clone(), dw, KEY);
        Simulator::new(&config)
            .run(&mut mem, profile.name, &w.warmup, w.trace.iter().cloned())
            .expect("trace fits");
        let s = mem.cache_stats();
        [
            s.hash.hit_rate(),
            s.addr_map.hit_rate(),
            s.inverted.hit_rate(),
            s.fsm.hit_rate(),
        ]
    });
    let mut avg = [0.0; 4];
    for i in 0..4 {
        avg[i] = mean(rates.iter().map(|r| r[i]));
    }
    avg
}

/// Fig. 21(a–d): hit rate vs per-partition capacity.
pub fn fig21(ctx: &mut Ctx) {
    let sizes_kb = [4usize, 16, 64, 256, 1024];
    let mut t = Table::new(
        "Fig. 21 — metadata cache hit rate vs capacity (paper shape: saturates; 512KB/128KB chosen)",
        &["size (KB each)", "hash", "addr-map", "inverted", "FSM"],
    );
    for kb in sizes_kb {
        let meta = MetaCacheConfig::scaled(kb, 256);
        let r = hit_rates_for(meta, ctx.scale);
        t.row(vec![
            kb.to_string(),
            pct(r[0]),
            pct(r[1]),
            pct(r[2]),
            pct(r[3]),
        ]);
    }
    ctx.emit(&t, "fig21_capacity");

    // Prefetch-granularity sweep at a mid capacity.
    let prefetches = [16usize, 64, 256, 1024];
    let mut p = Table::new(
        "Fig. 21 — hit rate vs prefetch granularity (sequential tables; paper picks 256)",
        &["prefetch entries", "addr-map", "inverted"],
    );
    for pf in prefetches {
        let meta = MetaCacheConfig::scaled(64, pf);
        let r = hit_rates_for(meta, ctx.scale);
        p.row(vec![pf.to_string(), pct(r[1]), pct(r[2])]);
    }
    ctx.emit(&p, "fig21_prefetch");
}
