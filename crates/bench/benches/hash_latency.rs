//! Software-throughput counterpart of Table I(a): fingerprinting a 256 B
//! line with CRC-32 / CRC-32C / MD5 / SHA-1, plus AES-128 counter-mode
//! encryption of a full line. (Simulated *hardware* latencies are the
//! constants in `dewrite_hashes::HashCost`; these benches document the cost
//! of the functional implementations driving the simulator.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dewrite_crypto::{CounterModeEngine, LineCounter};
use dewrite_hashes::HashAlgorithm;

fn bench_fingerprints(c: &mut Criterion) {
    let line: Vec<u8> = (0..256).map(|i| (i * 31 % 251) as u8).collect();
    let mut group = c.benchmark_group("fingerprint_256B");
    group.throughput(Throughput::Bytes(256));
    for alg in HashAlgorithm::ALL {
        let hasher = alg.hasher();
        group.bench_with_input(BenchmarkId::from_parameter(alg), &line, |b, line| {
            b.iter(|| hasher.digest(std::hint::black_box(line)));
        });
    }
    group.finish();
}

fn bench_aes_line(c: &mut Criterion) {
    let engine = CounterModeEngine::new(b"benchmark key 16");
    let line = vec![0xA5u8; 256];
    let ctr = LineCounter::from_value(7);
    let mut group = c.benchmark_group("aes_ctr_256B");
    group.throughput(Throughput::Bytes(256));
    group.bench_function("encrypt_line", |b| {
        b.iter(|| engine.encrypt_line(std::hint::black_box(&line), 0x1000, ctr));
    });
    group.bench_function("one_time_pad", |b| {
        b.iter(|| engine.one_time_pad(std::hint::black_box(0x1000), ctr, 256));
    });
    group.finish();
}

criterion_group!(benches, bench_fingerprints, bench_aes_line);
criterion_main!(benches);
