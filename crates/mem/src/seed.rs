//! The seed (pre-flat) metadata cache, retained verbatim as an **oracle**.
//!
//! This is the `Vec<Vec<Way>>` implementation the flat tag/way-array cache
//! in [`crate::cache`] replaced. It is kept — hidden from docs, but
//! compiled into the library — for the differential proptests in
//! `cache.rs` and as the `cache_access` speedup baseline in the `hotpath`
//! benchmark binary. Do not use it in product code paths.

use crate::cache::{CacheConfig, CacheStats, Evicted, Replacement};

#[derive(Debug, Clone)]
struct Way {
    key: u64,
    dirty: bool,
    stamp: u64,
}

/// Seed set-associative write-back metadata cache: one heap `Vec` per set,
/// linearly scanned, `swap_remove` evictions.
#[derive(Debug, Clone)]
pub struct SeedMetadataCache {
    config: CacheConfig,
    sets: Vec<Vec<Way>>,
    clock: u64,
    stats: CacheStats,
}

impl SeedMetadataCache {
    /// Create an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if capacity or associativity is zero.
    pub fn new(config: CacheConfig) -> Self {
        assert!(config.capacity > 0, "cache capacity must be nonzero");
        assert!(config.associativity > 0, "associativity must be nonzero");
        let num_sets = (config.capacity / config.associativity).max(1);
        let sets = vec![Vec::with_capacity(config.associativity); num_sets];
        SeedMetadataCache {
            config,
            sets,
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    fn set_of(&self, key: u64) -> usize {
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % self.sets.len()
    }

    /// Demand lookup; on a hit refreshes recency (LRU) and ORs the dirty
    /// bit. Returns whether it hit.
    pub fn access(&mut self, key: u64, write: bool) -> bool {
        self.clock += 1;
        let clock = self.clock;
        let is_lru = self.config.replacement == Replacement::Lru;
        let set = self.set_of(key);
        if let Some(way) = self.sets[set].iter_mut().find(|w| w.key == key) {
            if is_lru {
                way.stamp = clock;
            }
            way.dirty |= write;
            self.stats.hits += 1;
            true
        } else {
            self.stats.misses += 1;
            false
        }
    }

    /// Whether `key` is resident (no statistics side effects).
    pub fn contains(&self, key: u64) -> bool {
        let set = self.set_of(key);
        self.sets[set].iter().any(|w| w.key == key)
    }

    /// Insert `key` (demand fill). Returns the victim if one was evicted.
    pub fn insert(&mut self, key: u64, dirty: bool) -> Option<Evicted> {
        self.stats.demand_inserts += 1;
        self.insert_inner(key, dirty)
    }

    /// Insert a run of `count` sequential keys starting at `start`.
    /// Resident keys get the same policy-aware touch as the flat cache
    /// (LRU re-stamp, no accounting). Returns the number of dirty victims
    /// evicted.
    pub fn prefetch_run(&mut self, start: u64, count: usize) -> u64 {
        let mut dirty_victims = 0;
        let is_lru = self.config.replacement == Replacement::Lru;
        for k in 0..count as u64 {
            let Some(key) = start.checked_add(k) else {
                break;
            };
            let set = self.set_of(key);
            if let Some(way) = self.sets[set].iter_mut().find(|w| w.key == key) {
                if is_lru {
                    self.clock += 1;
                    way.stamp = self.clock;
                }
            } else {
                self.stats.prefetch_inserts += 1;
                if let Some(ev) = self.insert_inner(key, false) {
                    if ev.dirty {
                        dirty_victims += 1;
                    }
                }
            }
        }
        dirty_victims
    }

    fn insert_inner(&mut self, key: u64, dirty: bool) -> Option<Evicted> {
        self.clock += 1;
        let clock = self.clock;
        let set_idx = self.set_of(key);
        let assoc = self.config.associativity;
        let set = &mut self.sets[set_idx];

        if let Some(way) = set.iter_mut().find(|w| w.key == key) {
            way.dirty |= dirty;
            way.stamp = clock;
            return None;
        }

        let victim = if set.len() >= assoc {
            let idx = set
                .iter()
                .enumerate()
                .min_by_key(|(_, w)| w.stamp)
                .map(|(i, _)| i)
                .expect("set is nonempty");
            let w = set.swap_remove(idx);
            if w.dirty {
                self.stats.dirty_evictions += 1;
            }
            Some(Evicted {
                key: w.key,
                dirty: w.dirty,
            })
        } else {
            None
        };

        set.push(Way {
            key,
            dirty,
            stamp: clock,
        });
        victim
    }

    /// Clear every dirty bit, returning how many entries were dirty.
    pub fn flush_dirty(&mut self) -> u64 {
        let mut flushed = 0;
        for set in &mut self.sets {
            for way in set.iter_mut() {
                if way.dirty {
                    way.dirty = false;
                    flushed += 1;
                }
            }
        }
        flushed
    }

    /// Number of currently dirty entries.
    pub fn dirty_count(&self) -> u64 {
        self.sets
            .iter()
            .flat_map(|s| s.iter())
            .filter(|w| w.dirty)
            .count() as u64
    }

    /// Current statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}
